//! Reproducible randomness utilities.
//!
//! Every stochastic stage of the reproduction (weight init, data generation,
//! PGD random starts, batch shuffling, …) derives its RNG from an explicit
//! `u64` seed through [`SeedStream`], so a whole experiment is a pure
//! function of a single root seed, and stages can be re-run in isolation.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The workspace-standard RNG: ChaCha8 is fast, portable, and its output is
/// stable across `rand` versions (unlike `StdRng`).
pub type Rng = ChaCha8Rng;

/// Creates the workspace-standard RNG from a `u64` seed.
///
/// # Example
///
/// ```rust
/// use rand::Rng as _;
///
/// let mut a = rt_tensor::rng::rng_from_seed(7);
/// let mut b = rt_tensor::rng::rng_from_seed(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn rng_from_seed(seed: u64) -> Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// SplitMix64 finalizer — a high-quality 64-bit mixing function.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A splittable stream of seeds.
///
/// `SeedStream` derives statistically independent child seeds from a root
/// seed and a string label, so an experiment can hand out per-stage RNGs
/// (`"pretrain"`, `"downstream/3"`, `"pgd"`, …) without any cross-stage
/// correlation and without global mutable state.
///
/// # Example
///
/// ```rust
/// use rt_tensor::rng::SeedStream;
///
/// let root = SeedStream::new(42);
/// let a = root.child("pretrain").seed();
/// let b = root.child("finetune").seed();
/// assert_ne!(a, b);
/// // Deterministic: the same path always yields the same seed.
/// assert_eq!(a, SeedStream::new(42).child("pretrain").seed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedStream {
            state: splitmix64(seed),
        }
    }

    /// The seed value at this node of the derivation tree.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// Derives a child stream from a string label (FNV-1a over the label,
    /// mixed with the parent state through SplitMix64).
    pub fn child(&self, label: &str) -> SeedStream {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SeedStream {
            state: splitmix64(self.state ^ h),
        }
    }

    /// Derives a child stream from an integer index (e.g. a task or round
    /// number).
    pub fn child_idx(&self, index: u64) -> SeedStream {
        SeedStream {
            state: splitmix64(self.state ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Builds the workspace-standard RNG seeded at this node.
    pub fn rng(&self) -> Rng {
        rng_from_seed(self.state)
    }
}

impl Default for SeedStream {
    fn default() -> Self {
        SeedStream::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng as _;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(123);
        let mut b = rng_from_seed(123);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn children_are_independent_of_sibling_order() {
        let root = SeedStream::new(9);
        let a1 = root.child("a").seed();
        let _ = root.child("b");
        let a2 = root.child("a").seed();
        assert_eq!(a1, a2);
    }

    #[test]
    fn distinct_labels_distinct_seeds() {
        let root = SeedStream::new(9);
        assert_ne!(root.child("a").seed(), root.child("b").seed());
        assert_ne!(root.child_idx(0).seed(), root.child_idx(1).seed());
        assert_ne!(root.child("a").seed(), root.seed());
    }

    #[test]
    fn nested_derivation_is_deterministic() {
        let a = SeedStream::new(5).child("x").child_idx(3).seed();
        let b = SeedStream::new(5).child("x").child_idx(3).seed();
        assert_eq!(a, b);
    }
}
