//! Convolution lowering (`im2col`/`col2im`) and pooling kernels for NCHW
//! activations.
//!
//! Convolution is computed per-sample: lowering one sample's `[C, H, W]`
//! activation to a `[C·k·k, H_out·W_out]` patch matrix lets the convolution
//! forward pass become a single [`crate::linalg::gemm`] with the `[O, C·k·k]`
//! weight matrix, whose output is already in `[O, H_out, W_out]` layout.
//! The backward pass reuses the same lowering: `col2im` scatters patch-space
//! gradients back into image space.
//!
//! The batched entry points [`conv2d_forward`] / [`conv2d_backward`] fan the
//! per-sample lowering out over the [`rt_par`] pool. Samples are independent
//! (each owns a disjoint slice of the output/gradient buffers) and weight
//! gradients are folded in sample order after the parallel region, so every
//! thread count produces bit-identical results to the serial loop.
//!
//! # Sparsity-aware execution
//!
//! [`conv2d_forward_planned`] / [`conv2d_backward_planned`] additionally
//! accept a compiled [`rt_sparse::SparsePlan`] for the weight matrix and
//! dispatch on its kind:
//!
//! * **Compact** — the weight is packed once to its live output rows ×
//!   live input channels, `im2col` lowers only the live input channels
//!   (patch rows come in per-channel blocks of `k·k`), and dense GEMM
//!   runs on the small packed matrices before scattering back.
//! * **Csr** — row-parallel sparse kernels from [`rt_sparse::kernels`]
//!   walk the mask support directly.
//! * **Dense** (or a plan whose dims don't match) — the unchanged dense
//!   path.
//!
//! All three paths are bit-identical on masked weights: dead weights are
//! exactly `0.0`, the dense GEMM skips zero `A` entries, and the sparse
//! paths visit the surviving nonzero terms in the dense kernels' exact
//! order (see the `rt-sparse` crate docs for the `±0.0` argument).
//! Per-sample workspaces come from [`crate::pool`], the process-wide
//! thread-sharded buffer pool that removes the per-sample allocation
//! churn of the lowering.
//!
//! # Implicit-GEMM fast path
//!
//! When the [`crate::kern`] packed kernels are enabled and the shape is
//! worth packing, the dense forward path skips the intermediate `cols`
//! matrix entirely: [`im2col_packed_into`] lowers each sample **directly
//! into [`kern::pack_b`]'s panel layout** (packed once per tile, not per
//! sample-then-repacked), the weight matrix is packed once per batch via
//! [`kern::PackedA`], and the bias add is fused into the store epilogue.
//! The backward pass shares one packed `Wᵀ` across all samples for the
//! `dcols` product. Both are bit-identical to the legacy
//! lower-then-`linalg::gemm`-then-`add_bias` pipeline (`RT_KERN=0`
//! falls back to it).

use crate::linalg::{self, Gemm};
use crate::{kern, pool, Result, Tensor, TensorError};
use rt_sparse::{kernels as sparse_kernels, PlanKind, SparsePlan};
use std::sync::Mutex;

/// Geometry of a 2-D convolution or pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied to each border.
    pub padding: usize,
}

impl ConvGeometry {
    /// Creates a geometry descriptor.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        ConvGeometry {
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial extent for an input extent of `size`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] with a distinct detail for
    /// each failure mode: a zero stride, a zero kernel, or a kernel that
    /// (after padding) does not fit in the input. The three are reported
    /// separately so a mis-built geometry names its actual problem instead
    /// of blaming the kernel fit for everything.
    pub fn out_dim(&self, size: usize) -> Result<usize> {
        if self.stride == 0 {
            return Err(TensorError::InvalidGeometry {
                detail: "stride must be non-zero".to_string(),
            });
        }
        if self.kernel == 0 {
            return Err(TensorError::InvalidGeometry {
                detail: "kernel must be non-zero".to_string(),
            });
        }
        let padded = size + 2 * self.padding;
        if self.kernel > padded {
            return Err(TensorError::InvalidGeometry {
                detail: format!(
                    "kernel {} does not fit input {} with padding {}",
                    self.kernel, size, self.padding
                ),
            });
        }
        Ok((padded - self.kernel) / self.stride + 1)
    }
}

fn check_nchw(t: &Tensor, op: &'static str) -> Result<[usize; 4]> {
    if t.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.ndim(),
            op,
        });
    }
    let s = t.shape();
    Ok([s[0], s[1], s[2], s[3]])
}

/// Lowers one channel plane into its `k·k × H_out·W_out` patch-row block.
/// `dst` must be zero-filled on entry: padding taps are simply left at
/// zero, which is what makes a recycled-but-zeroed scratch buffer
/// indistinguishable from a fresh allocation.
fn im2col_channel(
    plane: &[f32],
    height: usize,
    width: usize,
    geo: ConvGeometry,
    h_out: usize,
    w_out: usize,
    dst: &mut [f32],
) {
    let k = geo.kernel;
    let cols = h_out * w_out;
    for ky in 0..k {
        for kx in 0..k {
            let row = ky * k + kx;
            let out_row = &mut dst[row * cols..(row + 1) * cols];
            for oy in 0..h_out {
                // Input y for this output row; may fall in the padding.
                let iy = (oy * geo.stride + ky) as isize - geo.padding as isize;
                if iy < 0 || iy >= height as isize {
                    continue;
                }
                let src_row = &plane[iy as usize * width..(iy as usize + 1) * width];
                for ox in 0..w_out {
                    let ix = (ox * geo.stride + kx) as isize - geo.padding as isize;
                    if ix < 0 || ix >= width as isize {
                        continue;
                    }
                    out_row[oy * w_out + ox] = src_row[ix as usize];
                }
            }
        }
    }
}

/// Lowers a full `[C, H, W]` sample into a zero-filled `[C·k·k, cols]`
/// buffer (the allocation-free core of [`im2col_single`]).
#[allow(clippy::too_many_arguments)]
fn im2col_into(
    sample: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    geo: ConvGeometry,
    h_out: usize,
    w_out: usize,
    dst: &mut [f32],
) {
    let k = geo.kernel;
    let block = k * k * h_out * w_out;
    let hw = height * width;
    debug_assert_eq!(dst.len(), channels * block);
    for c in 0..channels {
        im2col_channel(
            &sample[c * hw..(c + 1) * hw],
            height,
            width,
            geo,
            h_out,
            w_out,
            &mut dst[c * block..(c + 1) * block],
        );
    }
}

/// Lowers only the listed input channels: block `j` of `dst` holds the
/// patch rows of channel `live[j]`, giving a `[live.len()·k·k, cols]`
/// matrix that lines up with a row/group-compacted weight matrix. Dead
/// input channels are never read — this is where the Compact plan's
/// `im2col` savings come from.
#[allow(clippy::too_many_arguments)]
fn im2col_live_into(
    sample: &[f32],
    live: &[u32],
    height: usize,
    width: usize,
    geo: ConvGeometry,
    h_out: usize,
    w_out: usize,
    dst: &mut [f32],
) {
    let k = geo.kernel;
    let block = k * k * h_out * w_out;
    let hw = height * width;
    debug_assert_eq!(dst.len(), live.len() * block);
    for (j, &ch) in live.iter().enumerate() {
        let ch = ch as usize;
        im2col_channel(
            &sample[ch * hw..(ch + 1) * hw],
            height,
            width,
            geo,
            h_out,
            w_out,
            &mut dst[j * block..(j + 1) * block],
        );
    }
}

/// Lowers a full `[C, H, W]` sample **directly into [`kern::pack_b`]'s
/// panel layout** (implicit GEMM): patch element `(p, j)` of the virtual
/// `[C·k·k, H_out·W_out]` matrix lands at
/// `dst[(j / NR)·C·k·k·NR + p·NR + j % NR]`. Only in-bounds taps are
/// written, so `dst` must be zero-filled on entry — padding taps and the
/// ragged last panel's pad lanes stay `0.0`, exactly matching
/// `pack_b(im2col(sample))` bit for bit without ever materialising the
/// intermediate matrix.
#[allow(clippy::too_many_arguments)]
fn im2col_packed_into(
    sample: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    geo: ConvGeometry,
    h_out: usize,
    w_out: usize,
    dst: &mut [f32],
) {
    let k = geo.kernel;
    let hw = height * width;
    let cols = h_out * w_out;
    let ckk = channels * k * k;
    let nr = kern::NR;
    let panel_len = ckk * nr;
    debug_assert_eq!(dst.len(), kern::packed_b_len(ckk, cols));
    for c in 0..channels {
        let plane = &sample[c * hw..(c + 1) * hw];
        for ky in 0..k {
            let base_y = ky as isize - geo.padding as isize;
            for kx in 0..k {
                let p = (c * k + ky) * k + kx;
                let base_x = kx as isize - geo.padding as isize;
                for oy in 0..h_out {
                    let iy = (oy * geo.stride) as isize + base_y;
                    if iy < 0 || iy >= height as isize {
                        continue;
                    }
                    let src_row = &plane[iy as usize * width..(iy as usize + 1) * width];
                    for ox in 0..w_out {
                        let ix = (ox * geo.stride) as isize + base_x;
                        if ix < 0 || ix >= width as isize {
                            continue;
                        }
                        let j = oy * w_out + ox;
                        dst[(j / nr) * panel_len + p * nr + (j % nr)] = src_row[ix as usize];
                    }
                }
            }
        }
    }
}

/// Lowers one `[C, H, W]` sample (given as a flat slice) into a patch matrix
/// of shape `[C·k·k, H_out·W_out]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] if the window does not fit.
pub fn im2col_single(
    sample: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    geo: ConvGeometry,
) -> Result<Tensor> {
    let h_out = geo.out_dim(height)?;
    let w_out = geo.out_dim(width)?;
    let k = geo.kernel;
    let rows = channels * k * k;
    let cols = h_out * w_out;
    let mut out = vec![0.0f32; rows * cols];
    im2col_into(sample, channels, height, width, geo, h_out, w_out, &mut out);
    Tensor::from_vec(vec![rows, cols], out)
}

/// Inverse of [`im2col_single`]: accumulates a `[C·k·k, H_out·W_out]` patch
/// matrix back into a flat `[C, H, W]` image buffer (`+=` semantics, so
/// overlapping windows sum — exactly what the convolution backward needs).
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] / [`TensorError::ShapeMismatch`]
/// if the geometry or the patch matrix shape is inconsistent.
pub fn col2im_single(
    cols_mat: &Tensor,
    channels: usize,
    height: usize,
    width: usize,
    geo: ConvGeometry,
    image: &mut [f32],
) -> Result<()> {
    let h_out = geo.out_dim(height)?;
    let w_out = geo.out_dim(width)?;
    let k = geo.kernel;
    let rows = channels * k * k;
    let cols = h_out * w_out;
    if cols_mat.shape() != [rows, cols] {
        return Err(TensorError::ShapeMismatch {
            lhs: cols_mat.shape().to_vec(),
            rhs: vec![rows, cols],
            op: "col2im_single",
        });
    }
    if image.len() != channels * height * width {
        return Err(TensorError::LengthMismatch {
            shape: vec![channels, height, width],
            expected: channels * height * width,
            actual: image.len(),
        });
    }
    col2im_from(
        cols_mat.data(),
        channels,
        height,
        width,
        geo,
        h_out,
        w_out,
        image,
    );
    Ok(())
}

/// Accumulates one channel's `k·k × cols` patch-row block back into its
/// image plane (`+=` semantics).
fn col2im_channel(
    src_block: &[f32],
    height: usize,
    width: usize,
    geo: ConvGeometry,
    h_out: usize,
    w_out: usize,
    plane: &mut [f32],
) {
    let k = geo.kernel;
    let cols = h_out * w_out;
    for ky in 0..k {
        for kx in 0..k {
            let row = ky * k + kx;
            let src_row = &src_block[row * cols..(row + 1) * cols];
            for oy in 0..h_out {
                let iy = (oy * geo.stride + ky) as isize - geo.padding as isize;
                if iy < 0 || iy >= height as isize {
                    continue;
                }
                for ox in 0..w_out {
                    let ix = (ox * geo.stride + kx) as isize - geo.padding as isize;
                    if ix < 0 || ix >= width as isize {
                        continue;
                    }
                    plane[iy as usize * width + ix as usize] += src_row[oy * w_out + ox];
                }
            }
        }
    }
}

/// Slice-level core of [`col2im_single`] (all channels, `+=` semantics).
#[allow(clippy::too_many_arguments)]
fn col2im_from(
    cols_data: &[f32],
    channels: usize,
    height: usize,
    width: usize,
    geo: ConvGeometry,
    h_out: usize,
    w_out: usize,
    image: &mut [f32],
) {
    let k = geo.kernel;
    let block = k * k * h_out * w_out;
    let hw = height * width;
    debug_assert_eq!(cols_data.len(), channels * block);
    for c in 0..channels {
        col2im_channel(
            &cols_data[c * block..(c + 1) * block],
            height,
            width,
            geo,
            h_out,
            w_out,
            &mut image[c * hw..(c + 1) * hw],
        );
    }
}

/// Inverse of [`im2col_live_into`]: accumulates packed patch-row block `j`
/// back into image channel `live[j]`, leaving dead channels untouched.
/// Skipping a dead channel is bit-identical to the dense path, which only
/// ever adds exact `+0.0` there (a masked weight column's gradient is an
/// accumulator that started at `+0.0`, and float addition cannot underflow
/// to `-0.0`).
#[allow(clippy::too_many_arguments)]
fn col2im_live_from(
    cols_data: &[f32],
    live: &[u32],
    height: usize,
    width: usize,
    geo: ConvGeometry,
    h_out: usize,
    w_out: usize,
    image: &mut [f32],
) {
    let k = geo.kernel;
    let block = k * k * h_out * w_out;
    let hw = height * width;
    debug_assert_eq!(cols_data.len(), live.len() * block);
    for (j, &ch) in live.iter().enumerate() {
        let ch = ch as usize;
        col2im_channel(
            &cols_data[j * block..(j + 1) * block],
            height,
            width,
            geo,
            h_out,
            w_out,
            &mut image[ch * hw..(ch + 1) * hw],
        );
    }
}

/// Batched convolution forward: `out[s] = W × im2col(x[s]) (+ bias)` for
/// every sample `s`, fanned out over the [`rt_par`] pool.
///
/// `input` is `[N, C, H, W]`, `w_mat` the `[O, C·k·k]` weight matrix, and
/// `bias` (optional) a length-`O` slice added per output channel. Returns
/// `[N, O, H_out, W_out]`. Each sample owns a disjoint output slice, so the
/// result is bit-identical to the serial per-sample loop for every thread
/// count.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::ShapeMismatch`] /
/// [`TensorError::LengthMismatch`] for inconsistent operands and
/// [`TensorError::InvalidGeometry`] if the window does not fit. All
/// validation happens before the parallel region.
pub fn conv2d_forward(
    input: &Tensor,
    w_mat: &Tensor,
    bias: Option<&[f32]>,
    geo: ConvGeometry,
) -> Result<Tensor> {
    conv2d_forward_planned(input, w_mat, bias, geo, None)
}

/// Whether `plan` was compiled for this conv's `[O, C·k·k]` weight view
/// and selects a non-dense strategy. A mismatched or dense plan makes the
/// planned entry points silently take the dense path — a mis-plumbed plan
/// can cost speed but never correctness.
fn plan_matches_conv(plan: &SparsePlan, o: usize, ckk: usize, kk: usize) -> bool {
    plan.dims.rows == o
        && plan.dims.cols == ckk
        && match plan.kind {
            PlanKind::Dense => false,
            // Compact relies on column groups == input channels so packed
            // weights line up with the live-channel im2col blocks.
            PlanKind::Compact => plan.dims.col_group == kk,
            PlanKind::Csr => true,
        }
}

/// Adds the per-channel bias to one sample's `[O, H_out·W_out]` output.
fn add_bias(dst: &mut [f32], bias: Option<&[f32]>, out_plane: usize) {
    if let Some(b) = bias {
        for (ch, &bv) in b.iter().enumerate() {
            for v in &mut dst[ch * out_plane..(ch + 1) * out_plane] {
                *v += bv;
            }
        }
    }
}

/// In-place ReLU over one sample's output — the same `x.max(0.0)` the
/// standalone activation layer applies, so fusing it here is
/// bit-identical to running conv then ReLU.
fn relu_in_place(dst: &mut [f32], relu: bool) {
    if relu {
        for v in dst {
            *v = v.max(0.0);
        }
    }
}

/// [`conv2d_forward`] with an optional compiled sparsity plan for the
/// weight matrix (see the module docs for the dispatch rules). Passing
/// `None` — or a plan that does not match this conv's weight view — runs
/// the dense path. All paths are bit-identical on masked weights.
///
/// # Errors
///
/// Same validation errors as [`conv2d_forward`].
pub fn conv2d_forward_planned(
    input: &Tensor,
    w_mat: &Tensor,
    bias: Option<&[f32]>,
    geo: ConvGeometry,
    plan: Option<&SparsePlan>,
) -> Result<Tensor> {
    conv2d_forward_fused(input, w_mat, bias, geo, plan, false)
}

/// [`conv2d_forward_planned`] with an optionally fused trailing ReLU:
/// when `relu` is true the output is `max(conv(x) + b, 0)`, bit-identical
/// to running the convolution and then the activation's `x.max(0.0)` —
/// but without materialising the pre-activation tensor. The packed-kernel
/// fast path folds the ReLU into the store epilogue; the other paths
/// apply it in place per sample. Used by `rt-nn`'s eval-mode
/// conv→ReLU peephole fusion.
///
/// # Errors
///
/// Same validation errors as [`conv2d_forward`].
pub fn conv2d_forward_fused(
    input: &Tensor,
    w_mat: &Tensor,
    bias: Option<&[f32]>,
    geo: ConvGeometry,
    plan: Option<&SparsePlan>,
    relu: bool,
) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(input, "conv2d_forward")?;
    let h_out = geo.out_dim(h)?;
    let w_out = geo.out_dim(w)?;
    let k = geo.kernel;
    if w_mat.ndim() != 2 || w_mat.shape()[1] != c * k * k {
        return Err(TensorError::ShapeMismatch {
            lhs: w_mat.shape().to_vec(),
            rhs: vec![w_mat.shape().first().copied().unwrap_or(0), c * k * k],
            op: "conv2d_forward",
        });
    }
    let o = w_mat.shape()[0];
    if let Some(b) = bias {
        if b.len() != o {
            return Err(TensorError::LengthMismatch {
                shape: vec![o],
                expected: o,
                actual: b.len(),
            });
        }
    }
    let chw = c * h * w;
    let ckk = c * k * k;
    let out_plane = h_out * w_out;
    let mut out = Tensor::zeros(&[n, o, h_out, w_out]);
    if out.len() == 0 {
        return Ok(out);
    }
    let in_data = input.data();
    let plan = plan.filter(|p| plan_matches_conv(p, o, ckk, k * k));
    // Shapes are fully validated above, so the per-sample kernels cannot
    // fail; a panic here would indicate a bug and propagates via rt-par.
    match plan {
        Some(p) if p.kind == PlanKind::Csr => {
            let w_data = w_mat.data();
            rt_par::par_chunks_mut(out.data_mut(), o * out_plane, |s, dst| {
                let sample = &in_data[s * chw..(s + 1) * chw];
                let mut cols = pool::take_zeroed(ckk * out_plane);
                im2col_into(sample, c, h, w, geo, h_out, w_out, &mut cols);
                // Same zero-fill + ascending-k accumulation as the dense
                // ikj kernel, restricted to the mask support.
                sparse_kernels::csr_matmul(w_data, &cols, out_plane, p, dst);
                pool::put(cols);
                add_bias(dst, bias, out_plane);
                relu_in_place(dst, relu);
            });
        }
        Some(p) => {
            // Compact: pack the weight once (shared read-only across
            // samples), lower only live input channels per sample, run the
            // small dense GEMM, scatter live output rows back.
            let lr = &p.live_rows;
            let lg = &p.live_col_groups;
            let packed_cols = lg.len() * k * k;
            let mut pw_buf = pool::take(lr.len() * packed_cols);
            sparse_kernels::pack_matrix_groups(w_mat.data(), p, &mut pw_buf);
            let pw = Tensor::from_vec(vec![lr.len(), packed_cols], pw_buf)
                .expect("packed weight shape");
            rt_par::par_chunks_mut(out.data_mut(), o * out_plane, |s, dst| {
                let sample = &in_data[s * chw..(s + 1) * chw];
                let mut cols_buf = pool::take_zeroed(packed_cols * out_plane);
                im2col_live_into(sample, lg, h, w, geo, h_out, w_out, &mut cols_buf);
                let cols = Tensor::from_vec(vec![packed_cols, out_plane], cols_buf)
                    .expect("live cols shape");
                let mut y = Tensor::from_vec(
                    vec![lr.len(), out_plane],
                    pool::take(lr.len() * out_plane),
                )
                .expect("packed out shape");
                linalg::gemm(&pw, &cols, Gemm::new(), &mut y).expect("pre-validated gemm");
                // Dead output channels are exactly +0.0 in the dense path
                // (all their weights are masked), so clear-scatter matches.
                sparse_kernels::scatter_rows_clear(y.data(), out_plane, lr, dst);
                pool::put(cols.into_vec());
                pool::put(y.into_vec());
                add_bias(dst, bias, out_plane);
                relu_in_place(dst, relu);
            });
            pool::put(pw.into_vec());
        }
        None if kern::enabled() && kern::worth_packing(o, ckk, out_plane) => {
            // Implicit GEMM: pack the weight once per batch, lower each
            // sample straight into packed-B panels (no intermediate cols
            // matrix), and fuse the bias add into the store epilogue.
            // Bit-identical to the legacy arm below: the packed kernel
            // reproduces the ikj accumulation order and `v + bias[row]`
            // is the same float op as `add_bias`'s `*v += bias[ch]`.
            let pa = kern::PackedA::pack(w_mat.data(), o, ckk, false);
            let epi = match (bias, relu) {
                (Some(b), false) => kern::Epilogue::BiasRow(b),
                (Some(b), true) => kern::Epilogue::BiasRowRelu(b),
                (None, false) => kern::Epilogue::None,
                (None, true) => kern::Epilogue::Relu,
            };
            rt_par::par_chunks_mut(out.data_mut(), o * out_plane, |s, dst| {
                let sample = &in_data[s * chw..(s + 1) * chw];
                let mut bpack = pool::lease_zeroed(kern::packed_b_len(ckk, out_plane));
                im2col_packed_into(sample, c, h, w, geo, h_out, w_out, &mut bpack);
                kern::gemm_ab_prepacked(&pa, &bpack, out_plane, false, epi, dst);
            });
        }
        None => {
            rt_par::par_chunks_mut(out.data_mut(), o * out_plane, |s, dst| {
                let sample = &in_data[s * chw..(s + 1) * chw];
                let mut cols_buf = pool::take_zeroed(ckk * out_plane);
                im2col_into(sample, c, h, w, geo, h_out, w_out, &mut cols_buf);
                let cols =
                    Tensor::from_vec(vec![ckk, out_plane], cols_buf).expect("cols shape");
                let mut out_mat =
                    Tensor::from_vec(vec![o, out_plane], pool::take(o * out_plane))
                        .expect("out shape");
                linalg::gemm(w_mat, &cols, Gemm::new(), &mut out_mat)
                    .expect("pre-validated gemm");
                dst.copy_from_slice(out_mat.data());
                pool::put(cols.into_vec());
                pool::put(out_mat.into_vec());
                add_bias(dst, bias, out_plane);
                relu_in_place(dst, relu);
            });
        }
    }
    Ok(out)
}

/// Batched convolution backward, fanned out over the [`rt_par`] pool.
///
/// Given the cached forward `input` (`[N, C, H, W]`), upstream gradient
/// `grad_output` (`[N, O, H_out, W_out]`) and the `[O, C·k·k]` weight
/// matrix, returns `(grad_input, grad_w_mat, grad_bias)` where `grad_input`
/// matches the input shape, `grad_w_mat` is `[O, C·k·k]`, and `grad_bias`
/// (present when `want_bias`) holds per-channel gradient sums.
///
/// Samples run in parallel — each writes a disjoint `grad_input` slice and
/// produces private weight/bias partials, which are then folded **in sample
/// order** after the parallel region. That ordered fold reproduces the
/// serial accumulation loop bit-for-bit at every thread count.
///
/// # Errors
///
/// Shape/geometry validation errors as for [`conv2d_forward`]; all
/// validation happens before the parallel region.
pub fn conv2d_backward(
    input: &Tensor,
    grad_output: &Tensor,
    w_mat: &Tensor,
    geo: ConvGeometry,
    want_bias: bool,
) -> Result<(Tensor, Tensor, Option<Vec<f32>>)> {
    conv2d_backward_planned(input, grad_output, w_mat, geo, want_bias, None)
}

/// Per-sample bias partial: per-channel sums of the **full** upstream
/// gradient. Bias parameters are never masked, so every plan kind
/// computes bias gradients from the complete `dY` (dead output channels
/// still receive bias gradient, exactly as in the dense path).
fn bias_partial(go_sample: &[f32], o: usize, out_plane: usize, want: bool) -> Vec<f32> {
    if want {
        (0..o)
            .map(|ch| {
                go_sample[ch * out_plane..(ch + 1) * out_plane]
                    .iter()
                    .sum::<f32>()
            })
            .collect()
    } else {
        Vec::new()
    }
}

/// [`conv2d_backward`] with an optional compiled sparsity plan for the
/// weight matrix. Gradients are bit-identical to the masked dense path
/// *on the mask support*; dead weight-gradient entries are left at zero
/// (the dense path writes garbage there, which `mask_grad` zeroes — both
/// agree after masking). `grad_input` and `grad_bias` are bit-identical
/// unconditionally.
///
/// # Errors
///
/// Same validation errors as [`conv2d_backward`].
pub fn conv2d_backward_planned(
    input: &Tensor,
    grad_output: &Tensor,
    w_mat: &Tensor,
    geo: ConvGeometry,
    want_bias: bool,
    plan: Option<&SparsePlan>,
) -> Result<(Tensor, Tensor, Option<Vec<f32>>)> {
    let [n, c, h, w] = check_nchw(input, "conv2d_backward")?;
    let h_out = geo.out_dim(h)?;
    let w_out = geo.out_dim(w)?;
    let k = geo.kernel;
    if w_mat.ndim() != 2 || w_mat.shape()[1] != c * k * k {
        return Err(TensorError::ShapeMismatch {
            lhs: w_mat.shape().to_vec(),
            rhs: vec![w_mat.shape().first().copied().unwrap_or(0), c * k * k],
            op: "conv2d_backward",
        });
    }
    let o = w_mat.shape()[0];
    if grad_output.shape() != [n, o, h_out, w_out] {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_output.shape().to_vec(),
            rhs: vec![n, o, h_out, w_out],
            op: "conv2d_backward",
        });
    }
    let chw = c * h * w;
    let ckk = c * k * k;
    let out_plane = h_out * w_out;
    let mut grad_input = Tensor::zeros(input.shape());
    let mut grad_w_mat = Tensor::zeros(&[o, ckk]);
    let mut grad_bias = want_bias.then(|| vec![0.0f32; o]);
    if n == 0 || chw == 0 {
        return Ok((grad_input, grad_w_mat, grad_bias));
    }
    let in_data = input.data();
    let go_data = grad_output.data();
    let plan = plan.filter(|p| plan_matches_conv(p, o, ckk, k * k));
    // Per-sample weight/bias partials, folded in sample order below. The
    // weight partial's meaning depends on the plan kind: the full dense
    // `[O, C·k·k]` matrix (dense), the packed live-rows × live-groups
    // matrix (Compact), or per-live-entry values aligned with the plan's
    // `live_idx` (Csr).
    let partials: Vec<Mutex<Option<(Vec<f32>, Vec<f32>)>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    match plan {
        Some(p) if p.kind == PlanKind::Csr => {
            let w_data = w_mat.data();
            rt_par::par_chunks_mut(grad_input.data_mut(), chw, |s, gi_sample| {
                let sample = &in_data[s * chw..(s + 1) * chw];
                let go_sample = &go_data[s * o * out_plane..(s + 1) * o * out_plane];
                let mut cols = pool::take_zeroed(ckk * out_plane);
                im2col_into(sample, c, h, w, geo, h_out, w_out, &mut cols);
                // dW_s on the mask support only: per-live-entry dot
                // products replaying the dense A×Bᵀ kernel.
                let mut vals = pool::take(p.nnz);
                sparse_kernels::csr_dot_rows(go_sample, &cols, out_plane, p, &mut vals);
                // dcols = Wᵀ × dY over the support (dead patch rows stay
                // exactly +0.0, as in the masked dense kernel).
                let mut gcols = pool::take(ckk * out_plane);
                sparse_kernels::csc_matmul_t(w_data, go_sample, out_plane, p, &mut gcols);
                col2im_from(&gcols, c, h, w, geo, h_out, w_out, gi_sample);
                pool::put(cols);
                pool::put(gcols);
                let gb = bias_partial(go_sample, o, out_plane, want_bias);
                *partials[s].lock().expect("conv partial slot") = Some((vals, gb));
            });
        }
        Some(p) => {
            // Compact: pack the weight once, then per sample run the dense
            // GEMMs on live rows × live channel groups only.
            let lr = &p.live_rows;
            let lg = &p.live_col_groups;
            let packed_cols = lg.len() * k * k;
            let mut pw_buf = pool::take(lr.len() * packed_cols);
            sparse_kernels::pack_matrix_groups(w_mat.data(), p, &mut pw_buf);
            let pw = Tensor::from_vec(vec![lr.len(), packed_cols], pw_buf)
                .expect("packed weight shape");
            rt_par::par_chunks_mut(grad_input.data_mut(), chw, |s, gi_sample| {
                let sample = &in_data[s * chw..(s + 1) * chw];
                let go_sample = &go_data[s * o * out_plane..(s + 1) * o * out_plane];
                let mut cols_buf = pool::take_zeroed(packed_cols * out_plane);
                im2col_live_into(sample, lg, h, w, geo, h_out, w_out, &mut cols_buf);
                let cols = Tensor::from_vec(vec![packed_cols, out_plane], cols_buf)
                    .expect("live cols shape");
                let mut go_packed = pool::take(lr.len() * out_plane);
                sparse_kernels::gather_rows(go_sample, out_plane, lr, &mut go_packed);
                let go_p = Tensor::from_vec(vec![lr.len(), out_plane], go_packed)
                    .expect("packed grad shape");
                // Packed dW_s = dY_live × cols_liveᵀ (private partial).
                let mut gw_p = Tensor::from_vec(
                    vec![lr.len(), packed_cols],
                    pool::take(lr.len() * packed_cols),
                )
                .expect("packed gw shape");
                linalg::gemm(&go_p, &cols, Gemm::new().trans_b(), &mut gw_p)
                    .expect("pre-validated gemm");
                // Packed dcols = W_liveᵀ × dY_live, scattered to live
                // channels only (dead channels receive exactly +0.0 in
                // the dense path, so skipping them is bit-identical).
                let mut gcols_p = Tensor::from_vec(
                    vec![packed_cols, out_plane],
                    pool::take(packed_cols * out_plane),
                )
                .expect("packed gcols shape");
                linalg::gemm(&pw, &go_p, Gemm::new().trans_a(), &mut gcols_p)
                    .expect("pre-validated gemm");
                col2im_live_from(gcols_p.data(), lg, h, w, geo, h_out, w_out, gi_sample);
                let gb = bias_partial(go_sample, o, out_plane, want_bias);
                pool::put(cols.into_vec());
                pool::put(go_p.into_vec());
                pool::put(gcols_p.into_vec());
                *partials[s].lock().expect("conv partial slot") =
                    Some((gw_p.into_vec(), gb));
            });
            pool::put(pw.into_vec());
        }
        None if kern::enabled() && kern::worth_packing(o, ckk, out_plane) => {
            // Implicit-GEMM backward: one packed `Wᵀ` shared by every
            // sample's `dcols = Wᵀ × dY` product, and `dW_s = dY × colsᵀ`
            // running the packed kernel straight on the upstream-gradient
            // slice (no per-sample copy into a scratch matrix). Both
            // products are bit-identical to the legacy arm below.
            let pwt = kern::PackedA::pack(w_mat.data(), ckk, o, true);
            let dw_cfg = kern::KernCfg {
                trans_a: false,
                trans_b: true,
                acc: false,
                parallel: false,
            };
            rt_par::par_chunks_mut(grad_input.data_mut(), chw, |s, gi_sample| {
                let sample = &in_data[s * chw..(s + 1) * chw];
                let go_sample = &go_data[s * o * out_plane..(s + 1) * o * out_plane];
                let mut cols = pool::take_zeroed(ckk * out_plane);
                im2col_into(sample, c, h, w, geo, h_out, w_out, &mut cols);
                // dW_s = dY × colsᵀ (private partial, folded later).
                let mut gw = pool::take(o * ckk);
                kern::gemm(
                    go_sample,
                    &cols,
                    o,
                    out_plane,
                    ckk,
                    dw_cfg,
                    kern::Epilogue::None,
                    &mut gw,
                );
                // dcols = Wᵀ × dY, scattered back to image space.
                let mut gcols = pool::take(ckk * out_plane);
                kern::gemm_a_prepacked(
                    &pwt,
                    go_sample,
                    out_plane,
                    false,
                    false,
                    kern::Epilogue::None,
                    &mut gcols,
                );
                col2im_from(&gcols, c, h, w, geo, h_out, w_out, gi_sample);
                let gb = bias_partial(go_sample, o, out_plane, want_bias);
                pool::put(cols);
                pool::put(gcols);
                *partials[s].lock().expect("conv partial slot") = Some((gw, gb));
            });
        }
        None => {
            rt_par::par_chunks_mut(grad_input.data_mut(), chw, |s, gi_sample| {
                let sample = &in_data[s * chw..(s + 1) * chw];
                let go_sample = &go_data[s * o * out_plane..(s + 1) * o * out_plane];
                let mut cols_buf = pool::take_zeroed(ckk * out_plane);
                im2col_into(sample, c, h, w, geo, h_out, w_out, &mut cols_buf);
                let cols =
                    Tensor::from_vec(vec![ckk, out_plane], cols_buf).expect("cols shape");
                let mut go_vec = pool::take(o * out_plane);
                go_vec.copy_from_slice(go_sample);
                let go_mat = Tensor::from_vec(vec![o, out_plane], go_vec)
                    .expect("pre-validated grad slice");
                // dW_s = dY × colsᵀ (private partial, folded later).
                let mut gw =
                    Tensor::from_vec(vec![o, ckk], pool::take(o * ckk)).expect("gw shape");
                linalg::gemm(&go_mat, &cols, Gemm::new().trans_b(), &mut gw)
                    .expect("pre-validated gemm");
                // dcols = Wᵀ × dY, scattered back to image space.
                let mut gcols =
                    Tensor::from_vec(vec![ckk, out_plane], pool::take(ckk * out_plane))
                        .expect("gcols shape");
                linalg::gemm(w_mat, &go_mat, Gemm::new().trans_a(), &mut gcols)
                    .expect("pre-validated gemm");
                col2im_from(gcols.data(), c, h, w, geo, h_out, w_out, gi_sample);
                let gb = bias_partial(go_mat.data(), o, out_plane, want_bias);
                pool::put(cols.into_vec());
                pool::put(go_mat.into_vec());
                pool::put(gcols.into_vec());
                *partials[s].lock().expect("conv partial slot") = Some((gw.into_vec(), gb));
            });
        }
    }
    // Ordered fold: accumulate per-sample partials exactly as the serial
    // loop did (sample 0 first), preserving float-op order bit-for-bit.
    // Compact partials accumulate in packed space and scatter once at the
    // end; Csr partials scatter-accumulate per live entry. Both reproduce
    // the dense per-entry accumulation order on the mask support.
    let mut packed_acc = match plan {
        Some(p) if p.kind == PlanKind::Compact => {
            vec![0.0f32; p.live_rows.len() * p.live_col_groups.len() * k * k]
        }
        _ => Vec::new(),
    };
    for slot in partials {
        let (gw, gb) = slot
            .into_inner()
            .expect("conv partial slot")
            .expect("every sample ran");
        match plan {
            Some(p) if p.kind == PlanKind::Csr => {
                sparse_kernels::scatter_add_entries(&gw, p, grad_w_mat.data_mut());
            }
            Some(_) => {
                for (a, v) in packed_acc.iter_mut().zip(&gw) {
                    *a += v;
                }
            }
            None => {
                for (a, v) in grad_w_mat.data_mut().iter_mut().zip(&gw) {
                    *a += v;
                }
            }
        }
        pool::put(gw);
        if let Some(acc) = &mut grad_bias {
            for (dst, src) in acc.iter_mut().zip(gb) {
                *dst += src;
            }
        }
    }
    if let Some(p) = plan {
        if p.kind == PlanKind::Compact {
            sparse_kernels::scatter_matrix_groups(&packed_acc, p, grad_w_mat.data_mut());
        }
    }
    Ok((grad_input, grad_w_mat, grad_bias))
}

/// Output of [`max_pool2d`]: the pooled tensor plus the flat argmax index of
/// every pooled element (relative to its input plane), needed by
/// [`max_pool2d_backward`].
#[derive(Debug, Clone)]
pub struct MaxPoolOutput {
    /// Pooled activations, shape `[N, C, H_out, W_out]`.
    pub output: Tensor,
    /// For each pooled element, the flat `(y * W + x)` index of the input
    /// element that won the max, per `(n, c)` plane.
    pub argmax: Vec<u32>,
}

/// 2-D max pooling over an NCHW tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-NCHW input and
/// [`TensorError::InvalidGeometry`] if the window does not fit.
pub fn max_pool2d(input: &Tensor, geo: ConvGeometry) -> Result<MaxPoolOutput> {
    let [n, c, h, w] = check_nchw(input, "max_pool2d")?;
    let h_out = geo.out_dim(h)?;
    let w_out = geo.out_dim(w)?;
    let mut out = vec![f32::NEG_INFINITY; n * c * h_out * w_out];
    let mut argmax = vec![0u32; n * c * h_out * w_out];
    let data = input.data();
    for plane_idx in 0..n * c {
        let plane = &data[plane_idx * h * w..(plane_idx + 1) * h * w];
        let out_plane = &mut out[plane_idx * h_out * w_out..(plane_idx + 1) * h_out * w_out];
        let arg_plane = &mut argmax[plane_idx * h_out * w_out..(plane_idx + 1) * h_out * w_out];
        for oy in 0..h_out {
            for ox in 0..w_out {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0u32;
                for ky in 0..geo.kernel {
                    let iy = (oy * geo.stride + ky) as isize - geo.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for kx in 0..geo.kernel {
                        let ix = (ox * geo.stride + kx) as isize - geo.padding as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        let idx = iy as usize * w + ix as usize;
                        let v = plane[idx];
                        if v > best {
                            best = v;
                            best_idx = idx as u32;
                        }
                    }
                }
                out_plane[oy * w_out + ox] = best;
                arg_plane[oy * w_out + ox] = best_idx;
            }
        }
    }
    Ok(MaxPoolOutput {
        output: Tensor::from_vec(vec![n, c, h_out, w_out], out)?,
        argmax,
    })
}

/// Backward pass of [`max_pool2d`]: routes each output gradient to the input
/// element that won the max.
///
/// # Errors
///
/// Returns a shape error if `grad_output` disagrees with the recorded argmax
/// bookkeeping.
pub fn max_pool2d_backward(
    grad_output: &Tensor,
    argmax: &[u32],
    input_shape: &[usize],
) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(&Tensor::zeros(input_shape), "max_pool2d_backward")?;
    if grad_output.len() != argmax.len() {
        return Err(TensorError::LengthMismatch {
            shape: grad_output.shape().to_vec(),
            expected: argmax.len(),
            actual: grad_output.len(),
        });
    }
    let planes = n * c;
    let out_plane_len = grad_output.len() / planes;
    let mut grad_in = Tensor::zeros(&[n, c, h, w]);
    let gi = grad_in.data_mut();
    let go = grad_output.data();
    for plane_idx in 0..planes {
        let in_plane = &mut gi[plane_idx * h * w..(plane_idx + 1) * h * w];
        let go_plane = &go[plane_idx * out_plane_len..(plane_idx + 1) * out_plane_len];
        let arg_plane = &argmax[plane_idx * out_plane_len..(plane_idx + 1) * out_plane_len];
        for (g, &idx) in go_plane.iter().zip(arg_plane) {
            in_plane[idx as usize] += *g;
        }
    }
    Ok(grad_in)
}

/// Global average pooling: `[N, C, H, W] -> [N, C]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-NCHW input and
/// [`TensorError::EmptyTensor`] if the spatial extent is zero.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(input, "global_avg_pool")?;
    if h * w == 0 {
        return Err(TensorError::EmptyTensor {
            op: "global_avg_pool",
        });
    }
    let inv = 1.0 / (h * w) as f32;
    let data = input.data();
    let mut out = vec![0.0f32; n * c];
    for (plane_idx, o) in out.iter_mut().enumerate() {
        let plane = &data[plane_idx * h * w..(plane_idx + 1) * h * w];
        *o = plane.iter().sum::<f32>() * inv;
    }
    Tensor::from_vec(vec![n, c], out)
}

/// Backward pass of [`global_avg_pool`]: broadcasts each `[N, C]` gradient
/// uniformly over its `H×W` plane.
///
/// # Errors
///
/// Returns a shape error if `grad_output` is not `[N, C]` for the given
/// input shape.
pub fn global_avg_pool_backward(grad_output: &Tensor, input_shape: &[usize]) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(&Tensor::zeros(input_shape), "global_avg_pool_backward")?;
    if grad_output.shape() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_output.shape().to_vec(),
            rhs: vec![n, c],
            op: "global_avg_pool_backward",
        });
    }
    let inv = 1.0 / (h * w) as f32;
    let mut grad_in = Tensor::zeros(&[n, c, h, w]);
    let gi = grad_in.data_mut();
    for (plane_idx, &g) in grad_output.data().iter().enumerate() {
        let plane = &mut gi[plane_idx * h * w..(plane_idx + 1) * h * w];
        let v = g * inv;
        plane.iter_mut().for_each(|x| *x = v);
    }
    Ok(grad_in)
}

/// Nearest-neighbour 2× upsampling for NCHW tensors (used by the FCN
/// segmentation head).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-NCHW input.
pub fn upsample2x(input: &Tensor) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(input, "upsample2x")?;
    let mut out = Tensor::zeros(&[n, c, h * 2, w * 2]);
    let src = input.data();
    let dst = out.data_mut();
    for plane_idx in 0..n * c {
        let sp = &src[plane_idx * h * w..(plane_idx + 1) * h * w];
        let dp = &mut dst[plane_idx * 4 * h * w..(plane_idx + 1) * 4 * h * w];
        for y in 0..h {
            for x in 0..w {
                let v = sp[y * w + x];
                let base = (2 * y) * (2 * w) + 2 * x;
                dp[base] = v;
                dp[base + 1] = v;
                dp[base + 2 * w] = v;
                dp[base + 2 * w + 1] = v;
            }
        }
    }
    Ok(out)
}

/// Backward pass of [`upsample2x`]: sums each 2×2 output block into its
/// source input element.
///
/// # Errors
///
/// Returns a shape error if `grad_output` is not exactly twice the spatial
/// extent of `input_shape`.
pub fn upsample2x_backward(grad_output: &Tensor, input_shape: &[usize]) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(&Tensor::zeros(input_shape), "upsample2x_backward")?;
    if grad_output.shape() != [n, c, 2 * h, 2 * w] {
        return Err(TensorError::ShapeMismatch {
            lhs: grad_output.shape().to_vec(),
            rhs: vec![n, c, 2 * h, 2 * w],
            op: "upsample2x_backward",
        });
    }
    let mut grad_in = Tensor::zeros(&[n, c, h, w]);
    let gi = grad_in.data_mut();
    let go = grad_output.data();
    for plane_idx in 0..n * c {
        let ip = &mut gi[plane_idx * h * w..(plane_idx + 1) * h * w];
        let op = &go[plane_idx * 4 * h * w..(plane_idx + 1) * 4 * h * w];
        for y in 0..h {
            for x in 0..w {
                let base = (2 * y) * (2 * w) + 2 * x;
                ip[y * w + x] = op[base] + op[base + 1] + op[base + 2 * w] + op[base + 2 * w + 1];
            }
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_sparse::{build_plan, BitMask, MatrixDims};

    #[test]
    fn out_dim_formula() {
        let geo = ConvGeometry::new(3, 1, 1);
        assert_eq!(geo.out_dim(8).unwrap(), 8); // "same" convolution
        let geo2 = ConvGeometry::new(2, 2, 0);
        assert_eq!(geo2.out_dim(8).unwrap(), 4);
        assert!(ConvGeometry::new(5, 1, 0).out_dim(3).is_err());
        assert!(ConvGeometry::new(3, 0, 0).out_dim(8).is_err());
    }

    fn geometry_detail(geo: ConvGeometry, size: usize) -> String {
        match geo.out_dim(size).unwrap_err() {
            TensorError::InvalidGeometry { detail } => detail,
            other => panic!("expected InvalidGeometry, got {other:?}"),
        }
    }

    #[test]
    fn out_dim_blames_zero_stride_not_kernel_fit() {
        // stride == 0 with a kernel that also would not fit: the stride is
        // the first and only reported problem.
        let detail = geometry_detail(ConvGeometry::new(9, 0, 0), 3);
        assert!(detail.contains("stride"), "got: {detail}");
        assert!(!detail.contains("does not fit"), "got: {detail}");
    }

    #[test]
    fn out_dim_blames_zero_kernel_separately() {
        let detail = geometry_detail(ConvGeometry::new(0, 1, 0), 3);
        assert!(detail.contains("kernel must be non-zero"), "got: {detail}");
        assert!(!detail.contains("does not fit"), "got: {detail}");
    }

    #[test]
    fn out_dim_reports_kernel_fit_with_sizes() {
        let detail = geometry_detail(ConvGeometry::new(5, 1, 0), 3);
        assert!(
            detail.contains("kernel 5 does not fit input 3 with padding 0"),
            "got: {detail}"
        );
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no padding: im2col is the identity layout.
        let sample: Vec<f32> = (0..2 * 3 * 3).map(|i| i as f32).collect();
        let cols = im2col_single(&sample, 2, 3, 3, ConvGeometry::new(1, 1, 0)).unwrap();
        assert_eq!(cols.shape(), &[2, 9]);
        assert_eq!(cols.data(), sample.as_slice());
    }

    #[test]
    fn im2col_with_padding_zero_fills() {
        let sample = vec![1.0, 2.0, 3.0, 4.0]; // 1 channel, 2x2
        let cols = im2col_single(&sample, 1, 2, 2, ConvGeometry::new(3, 1, 1)).unwrap();
        assert_eq!(cols.shape(), &[9, 4]);
        // Center tap (ky=1, kx=1) reproduces the image.
        let center_row = &cols.data()[4 * 4..5 * 4];
        assert_eq!(center_row, &[1.0, 2.0, 3.0, 4.0]);
        // Top-left tap sees padding everywhere except bottom-right output.
        let tl_row = &cols.data()[0..4];
        assert_eq!(tl_row, &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn col2im_inverts_im2col_for_disjoint_windows() {
        // With stride == kernel the windows are disjoint so col2im(im2col(x))
        // equals x exactly.
        let sample: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let geo = ConvGeometry::new(2, 2, 0);
        let cols = im2col_single(&sample, 1, 4, 4, geo).unwrap();
        let mut back = vec![0.0f32; 16];
        col2im_single(&cols, 1, 4, 4, geo, &mut back).unwrap();
        assert_eq!(back, sample);
    }

    #[test]
    fn col2im_counts_overlaps() {
        // A 3x3 stride-1 padded lowering of an all-ones 3x3 image: col2im of
        // im2col gives, per pixel, the number of windows covering it.
        let sample = vec![1.0f32; 9];
        let geo = ConvGeometry::new(3, 1, 1);
        let cols = im2col_single(&sample, 1, 3, 3, geo).unwrap();
        let mut back = vec![0.0f32; 9];
        col2im_single(&cols, 1, 3, 3, geo, &mut back).unwrap();
        assert_eq!(back, vec![4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0]);
    }

    /// Serial reference implementation of [`conv2d_forward`] — the exact
    /// per-sample loop the batched entry point replaced.
    fn conv2d_forward_serial(
        input: &Tensor,
        w_mat: &Tensor,
        bias: Option<&[f32]>,
        geo: ConvGeometry,
    ) -> Tensor {
        let (n, c, h, w) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (h_out, w_out) = (geo.out_dim(h).unwrap(), geo.out_dim(w).unwrap());
        let o = w_mat.shape()[0];
        let (chw, out_plane) = (c * h * w, h_out * w_out);
        let mut out = Tensor::zeros(&[n, o, h_out, w_out]);
        for s in 0..n {
            let sample = &input.data()[s * chw..(s + 1) * chw];
            let cols = im2col_single(sample, c, h, w, geo).unwrap();
            let mut out_mat = Tensor::zeros(&[o, out_plane]);
            linalg::gemm(w_mat, &cols, Gemm::new(), &mut out_mat).unwrap();
            let dst = &mut out.data_mut()[s * o * out_plane..(s + 1) * o * out_plane];
            dst.copy_from_slice(out_mat.data());
            if let Some(b) = bias {
                for (ch, &bv) in b.iter().enumerate() {
                    for v in &mut dst[ch * out_plane..(ch + 1) * out_plane] {
                        *v += bv;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn batched_forward_matches_serial_reference() {
        let input = Tensor::from_fn(&[3, 2, 5, 5], |i| ((i * 37) % 19) as f32 / 4.0 - 2.0);
        let w_mat = Tensor::from_fn(&[4, 2 * 3 * 3], |i| ((i * 13) % 11) as f32 / 5.0 - 1.0);
        let geo = ConvGeometry::new(3, 1, 1);
        let bias = [0.25f32, -1.0, 0.5, 2.0];
        let got = conv2d_forward(&input, &w_mat, Some(&bias), geo).unwrap();
        let expect = conv2d_forward_serial(&input, &w_mat, Some(&bias), geo);
        assert_eq!(got, expect);
        // And without bias.
        let got2 = conv2d_forward(&input, &w_mat, None, geo).unwrap();
        let expect2 = conv2d_forward_serial(&input, &w_mat, None, geo);
        assert_eq!(got2, expect2);
    }

    #[test]
    fn batched_backward_is_adjoint_to_forward() {
        // <conv(x), gy> == <x, conv_backward_input(gy)> for bias-free conv —
        // the forward/backward pair are adjoint linear maps in x.
        let input = Tensor::from_fn(&[2, 2, 4, 4], |i| ((i * 7) % 13) as f32 / 3.0 - 2.0);
        let w_mat = Tensor::from_fn(&[3, 2 * 3 * 3], |i| ((i * 5) % 9) as f32 / 4.0 - 1.0);
        let geo = ConvGeometry::new(3, 1, 1);
        let y = conv2d_forward(&input, &w_mat, None, geo).unwrap();
        let gy = Tensor::from_fn(y.shape(), |i| ((i * 11) % 7) as f32 - 3.0);
        let (gx, gw, gb) = conv2d_backward(&input, &gy, &w_mat, geo, false).unwrap();
        assert!(gb.is_none());
        assert_eq!(gw.shape(), &[3, 2 * 3 * 3]);
        let lhs: f32 = y.data().iter().zip(gy.data()).map(|(&a, &b)| a * b).sum();
        let rhs: f32 = input.data().iter().zip(gx.data()).map(|(&a, &b)| a * b).sum();
        assert!(
            (lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn batched_backward_bias_sums_grad_planes() {
        let input = Tensor::ones(&[2, 1, 3, 3]);
        let w_mat = Tensor::ones(&[2, 9]);
        let geo = ConvGeometry::new(3, 1, 1);
        let gy = Tensor::ones(&[2, 2, 3, 3]);
        let (_, _, gb) = conv2d_backward(&input, &gy, &w_mat, geo, true).unwrap();
        // Each channel's bias grad is the sum of its gradient planes over
        // all samples: 2 samples × 9 ones.
        assert_eq!(gb.unwrap(), vec![18.0, 18.0]);
    }

    #[test]
    fn batched_conv_validates_shapes_before_running() {
        let input = Tensor::zeros(&[1, 2, 4, 4]);
        let geo = ConvGeometry::new(3, 1, 1);
        // Wrong weight columns.
        let bad_w = Tensor::zeros(&[3, 7]);
        assert!(conv2d_forward(&input, &bad_w, None, geo).is_err());
        // Wrong bias length.
        let w_mat = Tensor::zeros(&[3, 18]);
        assert!(conv2d_forward(&input, &w_mat, Some(&[0.0; 2]), geo).is_err());
        // Wrong grad_output shape.
        let bad_gy = Tensor::zeros(&[1, 3, 2, 2]);
        assert!(conv2d_backward(&input, &bad_gy, &w_mat, geo, false).is_err());
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let input = Tensor::from_vec(
            vec![1, 1, 2, 4],
            vec![1.0, 3.0, 2.0, 4.0, 5.0, 6.0, 8.0, 7.0],
        )
        .unwrap();
        let geo = ConvGeometry::new(2, 2, 0);
        let pooled = max_pool2d(&input, geo).unwrap();
        assert_eq!(pooled.output.shape(), &[1, 1, 1, 2]);
        assert_eq!(pooled.output.data(), &[6.0, 8.0]);

        let grad_out = Tensor::from_vec(vec![1, 1, 1, 2], vec![10.0, 20.0]).unwrap();
        let grad_in = max_pool2d_backward(&grad_out, &pooled.argmax, &[1, 1, 2, 4]).unwrap();
        assert_eq!(grad_in.data(), &[0.0, 0.0, 0.0, 0.0, 0.0, 10.0, 20.0, 0.0]);
    }

    #[test]
    fn global_avg_pool_round_trip() {
        let input = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let pooled = global_avg_pool(&input).unwrap();
        assert_eq!(pooled.shape(), &[2, 3]);
        assert_eq!(pooled.at(&[0, 0]).unwrap(), 1.5); // mean of 0..4

        let grad = Tensor::ones(&[2, 3]);
        let back = global_avg_pool_backward(&grad, &[2, 3, 2, 2]).unwrap();
        assert!(back.data().iter().all(|&g| (g - 0.25).abs() < 1e-7));
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: element {i} ({x} vs {y})");
        }
    }

    /// Runs forward + backward through both the dense and the planned path
    /// on mask-consistent weights and asserts bitwise agreement
    /// (weight gradients compared post-masking, where the contract holds).
    fn run_planned_equivalence(
        plan: &SparsePlan,
        n: usize,
        c: usize,
        hh: usize,
        ww: usize,
        o: usize,
        geo: ConvGeometry,
    ) {
        let ckk = plan.dims.cols;
        // Masked weights: live entries pseudo-random, dead exactly 0.0.
        let w_mat = Tensor::from_fn(&[o, ckk], |i| {
            if plan.bits.get(i) {
                ((i * 13) % 11) as f32 / 5.0 - 1.0
            } else {
                0.0
            }
        });
        let input = Tensor::from_fn(&[n, c, hh, ww], |i| ((i * 37) % 19) as f32 / 4.0 - 2.0);
        let bias: Vec<f32> = (0..o).map(|i| i as f32 * 0.25 - 0.5).collect();

        let dense_y = conv2d_forward(&input, &w_mat, Some(&bias), geo).unwrap();
        let plan_y =
            conv2d_forward_planned(&input, &w_mat, Some(&bias), geo, Some(plan)).unwrap();
        assert_bits_eq(dense_y.data(), plan_y.data(), "forward");

        let gy = Tensor::from_fn(dense_y.shape(), |i| ((i * 11) % 7) as f32 - 3.0);
        let (gx_d, mut gw_d, gb_d) = conv2d_backward(&input, &gy, &w_mat, geo, true).unwrap();
        let (gx_p, mut gw_p, gb_p) =
            conv2d_backward_planned(&input, &gy, &w_mat, geo, true, Some(plan)).unwrap();
        assert_bits_eq(gx_d.data(), gx_p.data(), "grad_input");
        assert_bits_eq(&gb_d.unwrap(), &gb_p.unwrap(), "grad_bias");
        // dW agrees on the mask support once dead entries are masked out:
        // the dense path writes garbage there, which `mask_grad` zeroes.
        plan.bits.zero_pruned(gw_d.data_mut());
        plan.bits.zero_pruned(gw_p.data_mut());
        assert_bits_eq(gw_d.data(), gw_p.data(), "grad_w (masked)");
    }

    #[test]
    fn compact_planned_conv_is_bit_identical_to_masked_dense() {
        let (n, c, o, k) = (2usize, 3usize, 4usize, 3usize);
        let geo = ConvGeometry::new(k, 1, 1);
        let ckk = c * k * k;
        // Channel-structured mask: output rows {0, 2} × input channels
        // {0, 2} fully live — the paper's structured-ticket shape.
        let mut bits = BitMask::zeros(o * ckk);
        for r in [0usize, 2] {
            for g in [0usize, 2] {
                for e in 0..k * k {
                    bits.set(r * ckk + g * k * k + e, true);
                }
            }
        }
        let plan = build_plan(&bits, MatrixDims::grouped(o, ckk, k * k));
        assert_eq!(plan.kind, PlanKind::Compact);
        run_planned_equivalence(&plan, n, c, 5, 5, o, geo);
    }

    #[test]
    fn csr_planned_conv_is_bit_identical_to_masked_dense() {
        let (n, c, o, k) = (3usize, 2usize, 5usize, 3usize);
        let geo = ConvGeometry::new(k, 1, 1);
        let ckk = c * k * k;
        // Unstructured ~8% mask.
        let mut bits = BitMask::zeros(o * ckk);
        for i in 0..o * ckk {
            if (i * 7) % 13 == 0 {
                bits.set(i, true);
            }
        }
        let plan = build_plan(&bits, MatrixDims::grouped(o, ckk, k * k));
        assert_eq!(plan.kind, PlanKind::Csr);
        run_planned_equivalence(&plan, n, c, 6, 6, o, geo);
    }

    #[test]
    fn mismatched_plan_falls_back_to_dense() {
        // A plan compiled for some other layer's dims must be ignored.
        let plan = build_plan(&BitMask::zeros(10), MatrixDims::linear(2, 5));
        let input = Tensor::from_fn(&[1, 2, 4, 4], |i| (i % 5) as f32 - 2.0);
        let w_mat = Tensor::from_fn(&[3, 18], |i| (i % 7) as f32 / 3.0 - 1.0);
        let geo = ConvGeometry::new(3, 1, 1);
        let dense = conv2d_forward(&input, &w_mat, None, geo).unwrap();
        let planned = conv2d_forward_planned(&input, &w_mat, None, geo, Some(&plan)).unwrap();
        assert_bits_eq(dense.data(), planned.data(), "fallback forward");
        let gy = Tensor::ones(dense.shape());
        let (gx_d, gw_d, _) = conv2d_backward(&input, &gy, &w_mat, geo, false).unwrap();
        let (gx_p, gw_p, _) =
            conv2d_backward_planned(&input, &gy, &w_mat, geo, false, Some(&plan)).unwrap();
        assert_bits_eq(gx_d.data(), gx_p.data(), "fallback grad_input");
        assert_bits_eq(gw_d.data(), gw_p.data(), "fallback grad_w");
    }

    #[test]
    fn im2col_live_matches_full_lowering_blocks() {
        let sample: Vec<f32> = (0..3 * 4 * 4).map(|i| (i as f32) * 0.5 - 3.0).collect();
        let geo = ConvGeometry::new(3, 1, 1);
        let full = im2col_single(&sample, 3, 4, 4, geo).unwrap();
        let block = 9 * 16; // k·k rows × out_plane
        let live = [0u32, 2];
        let mut packed = vec![0.0f32; live.len() * block];
        im2col_live_into(&sample, &live, 4, 4, geo, 4, 4, &mut packed);
        assert_eq!(&packed[0..block], &full.data()[0..block]);
        assert_eq!(&packed[block..2 * block], &full.data()[2 * block..3 * block]);
    }

    #[test]
    fn upsample_forward_and_backward_are_adjoint() {
        let x = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32 + 1.0);
        let up = upsample2x(&x).unwrap();
        assert_eq!(up.shape(), &[1, 2, 4, 4]);
        assert_eq!(up.at(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert_eq!(up.at(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(up.at(&[0, 0, 2, 3]).unwrap(), 4.0);

        // <up(x), y> == <x, up_backward(y)> (adjointness of linear maps).
        let y = Tensor::from_fn(&[1, 2, 4, 4], |i| (i % 5) as f32 - 2.0);
        let lhs: f32 = up.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let yt = upsample2x_backward(&y, &[1, 2, 2, 2]).unwrap();
        let rhs: f32 = x.data().iter().zip(yt.data()).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }
}
