//! Cache-blocked, panel-packed GEMM micro-kernels (the `rt-kern` layer).
//!
//! The legacy kernels in [`crate::linalg`] walk `A`/`B` in place; for
//! matrices beyond the cache they spend most of their time waiting on
//! strided loads. This module implements the classical packed approach:
//!
//! 1. **Pack** `op(B)` into column panels of [`NR`] columns — each panel
//!    is `k × NR`, laid out p-major (`panel[p * NR + j]`), so the inner
//!    loop streams one contiguous cache line per step. Packing performs
//!    the transpose gather, so a single micro-kernel serves all four
//!    `Gemm` transpose variants.
//! 2. **Pack** each `op(A)` row block into micro-panels of [`MR`] rows
//!    (`panel[p * MR + r]`), sized so a block stays cache-resident while
//!    every column panel streams past it.
//! 3. A register-tiled [`MR`]`×`[`NR`] **micro-kernel** accumulates the
//!    full `k` extent per tile with a fixed unrolled lane loop that LLVM
//!    autovectorizes (8-wide under the runtime-dispatched AVX2 path).
//!
//! # Bit-identity with the legacy kernels
//!
//! The repo's determinism contract requires packed results to be
//! **byte-identical** to `linalg::gemm`'s at every `RT_THREADS`. Three
//! rules make that hold *by construction* (proptests and the
//! `bench_kernels` divergence gate enforce it empirically):
//!
//! * **Tile only over m/n, never k.** A micro-tile accumulates its
//!   whole `0..k` extent serially, so every output element sees the
//!   exact term order of the serial legacy kernel. (Classical `KC`
//!   blocking would split the sum and change rounding.)
//! * **Replicate the zero-skip.** The legacy kernels skip terms whose
//!   `A` element is `±0.0` (pruned weights make this pay). The skip is
//!   a branch on a *scalar* broadcast across the whole `NR` lane
//!   vector, so the micro-kernel keeps it without losing SIMD — and the
//!   skip also makes zero-padded partial micro-panels free: a padding
//!   row is all `0.0`, hence never multiplied, hence can never pollute
//!   real lanes with `NaN`/`Inf` or flip a `-0.0`.
//! * **Match the legacy accumulator seeding.** The `trans_b = false`
//!   kernels add terms *directly into C* (`acc` mode starts from the
//!   existing value; overwrite pre-zeros), so the micro-kernel seeds
//!   its registers from `C`. The `trans_b = true` kernels compute a
//!   fresh dot product and apply one `+=`/`=` at the end, so there the
//!   micro-kernel seeds `0.0` and combines at store time.
//!
//! All scratch (packed panels) leases from [`crate::pool`]; a
//! steady-state training step performs **zero** allocations in this
//! module.
//!
//! `RT_KERN=0` disables the packed path and [`crate::linalg::gemm`]
//! falls back to the legacy kernels (the kill-switch).

use crate::pool;
use std::sync::atomic::{AtomicU8, Ordering};

/// Micro-tile rows: one accumulator row per `A` element broadcast.
pub const MR: usize = 4;

/// Micro-tile columns: two 8-lane AVX2 vectors per accumulator row.
pub const NR: usize = 16;

/// Target bytes for a packed `A` row block (keeps the block L2-resident
/// while `B` panels stream). Block height derives from this and `k`
/// only — never from the thread count — so chunk boundaries stay
/// deterministic.
const A_BLOCK_BYTES: usize = 192 << 10;

/// Target bytes for the group of `B` panels walked per `A` pass (the
/// effective `NC`), keeping the group cache-resident across row panels.
const B_GROUP_BYTES: usize = 192 << 10;

/// Below this many multiply-adds the packing passes cost more than they
/// save; `linalg::gemm` keeps such shapes on the legacy kernels. Pure
/// function of shape — part of the determinism contract.
pub const PACK_MIN_MULADDS: usize = 1 << 13;

// ---------------------------------------------------------------------------
// RT_KERN kill-switch
// ---------------------------------------------------------------------------

/// 0 = unresolved, 1 = on, 2 = off.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether the packed kernels are enabled (`RT_KERN`, default on;
/// `0`/`false`/`off` fall back to the legacy kernels).
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = match std::env::var("RT_KERN") {
                Ok(v) => {
                    let v = v.trim().to_ascii_lowercase();
                    !(v == "0" || v == "false" || v == "off")
                }
                Err(_) => true,
            };
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Test/bench hook: force the packed path on/off, overriding `RT_KERN`.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Whether a shape is worth the packing passes. Pure function of shape
/// (never of thread count or pool state): callers may use it to pick a
/// kernel, and determinism is preserved either way because both kernels
/// produce identical bytes.
pub fn worth_packing(m: usize, k: usize, n: usize) -> bool {
    m.saturating_mul(k).saturating_mul(n) >= PACK_MIN_MULADDS && n >= 2 && m >= 2 && k >= 2
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Packed-gemm configuration: transpose flags, accumulate mode, and
/// whether row blocks may fan out on the rt-par pool.
#[derive(Debug, Clone, Copy)]
pub struct KernCfg {
    /// Read `A` transposed (`A` is stored `[k, m]`).
    pub trans_a: bool,
    /// Read `B` transposed (`B` is stored `[n, k]`).
    pub trans_b: bool,
    /// `C += …` instead of `C = …`.
    pub acc: bool,
    /// Fan row blocks out on the global rt-par pool. Callers already
    /// inside a parallel region (e.g. per-sample conv) pass `false`;
    /// results are identical either way.
    pub parallel: bool,
}

/// Fused store-time epilogue, applied only in overwrite mode (an
/// accumulating gemm has no "end of computation" to fuse into).
#[derive(Debug, Clone, Copy)]
pub enum Epilogue<'a> {
    /// Plain store.
    None,
    /// `v.max(0.0)` — bit-identical to the `Relu` layer applied to the
    /// plain store (bias-free conv → ReLU fusion).
    Relu,
    /// `v + bias[row]` (conv layout: one bias per output channel row).
    BiasRow(&'a [f32]),
    /// `v + bias[col]` (linear layout: one bias per output feature).
    BiasCol(&'a [f32]),
    /// `(v + bias[row]).max(0.0)` — bit-identical to bias-add followed
    /// by the `Relu` layer's `x.max(0.0)`.
    BiasRowRelu(&'a [f32]),
    /// `(v + bias[col]).max(0.0)`.
    BiasColRelu(&'a [f32]),
}

impl Epilogue<'_> {
    #[inline]
    fn apply(&self, v: f32, row: usize, col: usize) -> f32 {
        match *self {
            Epilogue::None => v,
            Epilogue::Relu => v.max(0.0),
            Epilogue::BiasRow(b) => v + b[row],
            Epilogue::BiasCol(b) => v + b[col],
            Epilogue::BiasRowRelu(b) => (v + b[row]).max(0.0),
            Epilogue::BiasColRelu(b) => (v + b[col]).max(0.0),
        }
    }
}

// ---------------------------------------------------------------------------
// Blocking parameters (pure functions of shape)
// ---------------------------------------------------------------------------

/// Rows of `C` per packed `A` block: sized for [`A_BLOCK_BYTES`],
/// rounded to a multiple of [`MR`].
fn m_block(m: usize, k: usize) -> usize {
    let per_row = k.max(1) * std::mem::size_of::<f32>();
    let rows = (A_BLOCK_BYTES / per_row).max(MR);
    let rows = rows - rows % MR;
    rows.clamp(MR, m.max(1).div_ceil(MR) * MR)
}

/// `B` panels walked per `A` pass (the effective `NC / NR`).
fn b_group_panels(k: usize) -> usize {
    let per_panel = k.max(1) * NR * std::mem::size_of::<f32>();
    (B_GROUP_BYTES / per_panel).max(1)
}

/// Number of `NR`-wide column panels covering `n` columns.
pub fn b_panels(n: usize) -> usize {
    n.div_ceil(NR)
}

/// Length in elements of one packed `B` panel (`k × NR`, p-major).
pub fn b_panel_len(k: usize) -> usize {
    k * NR
}

/// Total length of a fully packed `B` (all panels).
pub fn packed_b_len(k: usize, n: usize) -> usize {
    b_panels(n) * b_panel_len(k)
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// Packs columns `[0, n)` of `op(B)` (`k × n` effective) into `NR`-wide
/// p-major panels. Every slot is written (padding columns get `0.0`),
/// so a dirty pool buffer is safe.
///
/// Layout contract (shared with the conv implicit-GEMM packer):
/// element `(p, j)` of panel `jp` lives at
/// `dst[jp * k * NR + p * NR + (j - jp * NR)]`.
pub fn pack_b(dst: &mut [f32], bv: &[f32], k: usize, n: usize, trans_b: bool) {
    debug_assert_eq!(dst.len(), packed_b_len(k, n));
    for (jp, panel) in dst.chunks_mut(b_panel_len(k).max(1)).enumerate() {
        let j0 = jp * NR;
        let cols = NR.min(n - j0);
        for p in 0..k {
            let slot = &mut panel[p * NR..p * NR + NR];
            if trans_b {
                // op(B)[p][j] = B[j][p], B stored [n, k].
                for (jj, s) in slot.iter_mut().enumerate() {
                    *s = if jj < cols { bv[(j0 + jj) * k + p] } else { 0.0 };
                }
            } else {
                // op(B)[p][j] = B[p][j], B stored [k, n].
                let src = &bv[p * n + j0..p * n + j0 + cols];
                slot[..cols].copy_from_slice(src);
                slot[cols..].fill(0.0);
            }
        }
    }
}

/// Packs rows `[r0, r0 + rows)` of `op(A)` (`m × k` effective) into
/// `MR`-tall p-major micro-panels. Padding rows are `0.0`, which the
/// micro-kernel's zero-skip turns into no-ops.
fn pack_a_block(
    dst: &mut [f32],
    av: &[f32],
    m: usize,
    k: usize,
    trans_a: bool,
    r0: usize,
    rows: usize,
) {
    debug_assert_eq!(dst.len(), rows.div_ceil(MR) * MR * k);
    for (ip, panel) in dst.chunks_mut((MR * k).max(1)).enumerate() {
        let i0 = r0 + ip * MR;
        let live = MR.min(rows - ip * MR);
        for p in 0..k {
            let slot = &mut panel[p * MR..p * MR + MR];
            for (rr, s) in slot.iter_mut().enumerate() {
                *s = if rr < live {
                    let i = i0 + rr;
                    // op(A)[i][p]: A stored [m, k], or [k, m] transposed.
                    if trans_a {
                        av[p * m + i]
                    } else {
                        av[i * k + p]
                    }
                } else {
                    0.0
                };
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Micro-kernel
// ---------------------------------------------------------------------------

type AccTile = [[f32; NR]; MR];

/// The register-tiled inner kernel: accumulates the full `k` extent of
/// one `MR × NR` tile. `apanel` is `k × MR` p-major, `bpanel` is
/// `k × NR` p-major. The `a == 0.0` skip replicates the legacy
/// kernels' zero-skip exactly (see module docs); it branches on a
/// scalar, so the `NR`-lane inner loop still vectorizes.
#[inline(always)]
fn micro_body(apanel: &[f32], bpanel: &[f32], k: usize, tile: &mut AccTile) {
    for p in 0..k {
        let brow: &[f32; NR] = bpanel[p * NR..p * NR + NR]
            .try_into()
            .expect("panel slot is NR wide");
        let arow: &[f32; MR] = apanel[p * MR..p * MR + MR]
            .try_into()
            .expect("panel slot is MR tall");
        // Fast path: when the whole MR column of A is nonzero (the
        // overwhelmingly common dense case) every row updates, so one
        // hoisted branch replaces MR per-row branches and the body is a
        // straight-line block LLVM vectorizes aggressively. The slow
        // path applies the per-row zero-skip; both paths add the exact
        // same terms in the exact same order per element, so the split
        // cannot change bits.
        if arow.iter().all(|&a| a != 0.0) {
            for r in 0..MR {
                let a = arow[r];
                let acc = &mut tile[r];
                for c in 0..NR {
                    acc[c] += a * brow[c];
                }
            }
        } else {
            for r in 0..MR {
                let a = arow[r];
                if a != 0.0 {
                    let acc = &mut tile[r];
                    for c in 0..NR {
                        acc[c] += a * brow[c];
                    }
                }
            }
        }
    }
}

/// Runtime SIMD dispatch — the crate's single sanctioned `unsafe`
/// surface (rt-tensor is otherwise `#![deny(unsafe_code)]`; see
/// `lib.rs`).
///
/// The AVX2 variant compiles the *identical* scalar body under
/// `#[target_feature(enable = "avx2")]`, which only widens LLVM's
/// autovectorized lanes. No FMA is ever emitted (Rust never contracts
/// `a * b + c`), so every lane performs the same IEEE
/// multiply-then-add as the baseline build: results are bit-identical
/// across dispatch choices, and the dispatch is invisible to numerics.
mod simd {
    #![allow(unsafe_code)]

    use super::{micro_body, AccTile};
    use std::sync::atomic::{AtomicU8, Ordering};

    /// # Safety
    ///
    /// Caller must ensure the CPU supports AVX2 (checked once in
    /// [`micro`] via `is_x86_feature_detected!`).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn micro_avx2(apanel: &[f32], bpanel: &[f32], k: usize, tile: &mut AccTile) {
        micro_body(apanel, bpanel, k, tile);
    }

    /// 0 = unresolved, 1 = avx2, 2 = generic.
    static MICRO_SEL: AtomicU8 = AtomicU8::new(0);

    /// Safe entry point: runs the micro-kernel through the widest
    /// available dispatch. The selection is cached in a relaxed atomic;
    /// one load + branch per `MR × NR × k` tile is noise.
    #[inline]
    pub(super) fn micro(apanel: &[f32], bpanel: &[f32], k: usize, tile: &mut AccTile) {
        #[cfg(target_arch = "x86_64")]
        {
            let sel = match MICRO_SEL.load(Ordering::Relaxed) {
                0 => {
                    let avx2 = is_x86_feature_detected!("avx2");
                    MICRO_SEL.store(if avx2 { 1 } else { 2 }, Ordering::Relaxed);
                    if avx2 {
                        1
                    } else {
                        2
                    }
                }
                s => s,
            };
            if sel == 1 {
                // Safety: AVX2 support verified above (cached).
                unsafe { micro_avx2(apanel, bpanel, k, tile) };
                return;
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = &MICRO_SEL;
        micro_body(apanel, bpanel, k, tile);
    }
}

// ---------------------------------------------------------------------------
// Block compute
// ---------------------------------------------------------------------------

/// How the accumulator interacts with existing `C` values — derived
/// from the legacy kernel for each variant (see module docs).
#[derive(Clone, Copy, PartialEq)]
enum Seed {
    /// Overwrite: seed `0.0`, assign at store.
    Zero,
    /// `trans_b = false` + acc: seed registers *from `C`*, assign back.
    FromC,
    /// `trans_b = true` + acc: seed `0.0`, `+=` at store.
    AddAtStore,
}

fn seed_mode(trans_b: bool, acc: bool) -> Seed {
    match (acc, trans_b) {
        (false, _) => Seed::Zero,
        (true, false) => Seed::FromC,
        (true, true) => Seed::AddAtStore,
    }
}

/// Computes one packed row block: `out_blk` holds rows
/// `[r0, r0 + rows)` of `C` (row stride `n`), `apack` the matching
/// packed `A` panels, `bpack` the full packed `B`.
#[allow(clippy::too_many_arguments)]
fn compute_block(
    out_blk: &mut [f32],
    r0: usize,
    rows: usize,
    k: usize,
    n: usize,
    apack: &[f32],
    bpack: &[f32],
    seed: Seed,
    epi: &Epilogue<'_>,
) {
    let nb = b_panels(n);
    let group = b_group_panels(k);
    let row_panels = rows.div_ceil(MR);
    for jp_start in (0..nb).step_by(group) {
        let jp_end = (jp_start + group).min(nb);
        for ip in 0..row_panels {
            let apanel = &apack[ip * MR * k..(ip + 1) * MR * k];
            let live_rows = MR.min(rows - ip * MR);
            for jp in jp_start..jp_end {
                let bpanel = &bpack[jp * k * NR..(jp + 1) * k * NR];
                let j0 = jp * NR;
                let live_cols = NR.min(n - j0);
                // Seed the accumulator tile (FromC loads existing C so
                // acc mode adds terms directly onto it, legacy-style).
                let mut tile: AccTile = [[0.0; NR]; MR];
                if seed == Seed::FromC {
                    for (rr, row) in tile.iter_mut().enumerate().take(live_rows) {
                        let o = (ip * MR + rr) * n + j0;
                        row[..live_cols].copy_from_slice(&out_blk[o..o + live_cols]);
                    }
                }
                // Accumulate the full k extent (serial 0..k per element).
                simd::micro(apanel, bpanel, k, &mut tile);
                // Store live lanes; padding lanes are discarded.
                for (rr, row) in tile.iter().enumerate().take(live_rows) {
                    let o = (ip * MR + rr) * n + j0;
                    let dst = &mut out_blk[o..o + live_cols];
                    match seed {
                        Seed::AddAtStore => {
                            for (d, &v) in dst.iter_mut().zip(row.iter()) {
                                *d += v;
                            }
                        }
                        Seed::Zero | Seed::FromC => {
                            let grow = r0 + ip * MR + rr;
                            for (cc, (d, &v)) in dst.iter_mut().zip(row.iter()).enumerate() {
                                *d = epi.apply(v, grow, j0 + cc);
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Packed gemm over raw slices: `out (+)= op(A) × op(B)` with an
/// optional fused epilogue. Effective shapes are `op(A): [m, k]`,
/// `op(B): [k, n]`, `out: [m, n]`; slices must match exactly (callers —
/// `linalg::gemm` and the conv/linear layers — have already validated
/// shapes).
///
/// Bit-identical to the legacy `linalg` kernels for every input,
/// including `±0.0`, subnormals and non-finite values (the zero-skip
/// and accumulation order are replicated exactly — see module docs).
///
/// # Panics
///
/// Debug-asserts slice lengths; panics on epilogue bias shorter than
/// the indexed extent.
#[allow(clippy::too_many_arguments)]
pub fn gemm(av: &[f32], bv: &[f32], m: usize, k: usize, n: usize, cfg: KernCfg, epi: Epilogue<'_>, out: &mut [f32]) {
    debug_assert_eq!(av.len(), m * k);
    debug_assert_eq!(bv.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    debug_assert!(!cfg.acc || matches!(epi, Epilogue::None), "epilogue requires overwrite mode");
    if m == 0 || n == 0 {
        return;
    }
    let mut bpack = pool::lease(packed_b_len(k, n));
    pack_b(&mut bpack, bv, k, n, cfg.trans_b);
    gemm_b_prepacked(av, &bpack, m, k, n, cfg, epi, out);
}

/// Packed gemm with a caller-packed `B` (layout per [`pack_b`]). The
/// conv layer uses this to pack im2col panels **directly** from the
/// input image (implicit GEMM), skipping the intermediate `cols`
/// matrix.
#[allow(clippy::too_many_arguments)]
pub fn gemm_b_prepacked(
    av: &[f32],
    bpack: &[f32],
    m: usize,
    k: usize,
    n: usize,
    cfg: KernCfg,
    epi: Epilogue<'_>,
    out: &mut [f32],
) {
    debug_assert_eq!(bpack.len(), packed_b_len(k, n));
    if m == 0 || n == 0 {
        return;
    }
    let seed = seed_mode(cfg.trans_b, cfg.acc);
    let mc = m_block(m, k);
    let run = |blk: usize, out_blk: &mut [f32]| {
        let r0 = blk * mc;
        let rows = out_blk.len() / n.max(1);
        let mut apack = pool::lease(rows.div_ceil(MR) * MR * k);
        pack_a_block(&mut apack, av, m, k, cfg.trans_a, r0, rows);
        compute_block(out_blk, r0, rows, k, n, &apack, bpack, seed, &epi);
    };
    if cfg.parallel && m > mc {
        rt_par::par_chunks_mut(out, mc * n, |blk, out_blk| run(blk, out_blk));
    } else {
        for (blk, out_blk) in out.chunks_mut((mc * n).max(1)).enumerate() {
            run(blk, out_blk);
        }
    }
}

/// A fully packed `op(A)` (all row panels), reusable across many gemm
/// calls — the conv layers pack the weight matrix **once per batch**
/// and reuse it for every sample's implicit-GEMM product.
pub struct PackedA {
    data: pool::Lease,
    m: usize,
    k: usize,
}

impl PackedA {
    /// Packs all of `op(A)` (`m × k` effective) into micro-panels.
    pub fn pack(av: &[f32], m: usize, k: usize, trans_a: bool) -> PackedA {
        let mut data = pool::lease(m.div_ceil(MR) * MR * k);
        pack_a_block(&mut data, av, m, k, trans_a, 0, m);
        PackedA { data, m, k }
    }

    /// Effective rows `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Effective depth `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Serial packed gemm with a reusable packed `A` and a raw `op(B)`
/// slice (packed internally, pooled). Used per sample inside conv's
/// batch fan-out, where the surrounding rt-par region owns parallelism.
pub fn gemm_a_prepacked(
    pa: &PackedA,
    bv: &[f32],
    n: usize,
    trans_b: bool,
    acc: bool,
    epi: Epilogue<'_>,
    out: &mut [f32],
) {
    debug_assert_eq!(out.len(), pa.m * n);
    if pa.m == 0 || n == 0 {
        return;
    }
    let mut bpack = pool::lease(packed_b_len(pa.k, n));
    pack_b(&mut bpack, bv, pa.k, n, trans_b);
    gemm_ab_prepacked(pa, &bpack, n, acc_seed(trans_b, acc), epi, out);
}

/// Serial packed gemm with both operands prepacked (`B` per
/// [`pack_b`]'s layout contract).
pub fn gemm_ab_prepacked(
    pa: &PackedA,
    bpack: &[f32],
    n: usize,
    acc: bool,
    epi: Epilogue<'_>,
    out: &mut [f32],
) {
    debug_assert_eq!(bpack.len(), packed_b_len(pa.k, n));
    if pa.m == 0 || n == 0 {
        return;
    }
    // A prepacked B always corresponds to `trans_b` resolved at packing
    // time; accumulate mode therefore seeds from C (the `trans_b=false`
    // rule) — see `acc_seed` for the caller-facing mapping.
    let seed = if acc { Seed::FromC } else { Seed::Zero };
    compute_block(out, 0, pa.m, pa.k, n, &pa.data, bpack, seed, &epi);
}

/// Maps a caller's `(trans_b, acc)` pair onto [`gemm_ab_prepacked`]'s
/// seed flag: the legacy `trans_b = true` kernels combine at store
/// time, which `FromC` seeding reproduces **only** when no term is
/// zero-skipped after a `-0.0` partial sum — so `gemm_a_prepacked`
/// keeps the exact store-time combine by translating here.
fn acc_seed(trans_b: bool, acc: bool) -> bool {
    // Seed-from-C and store-time-add produce identical bits only for
    // trans_b = false; for trans_b = true the store-time `+=` is the
    // legacy order, which `gemm_a_prepacked` handles via `gemm`'s full
    // seed table. Callers of the prepacked-A path use overwrite or
    // trans_b = false accumulation exclusively.
    debug_assert!(!(trans_b && acc), "prepacked-A path: acc requires trans_b = false");
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Verbatim replica of the legacy `linalg::gemm` float semantics
    /// over raw slices (zero-skip on A, per-variant accumulator
    /// handling) — the bit-identity oracle.
    #[allow(clippy::too_many_arguments)]
    fn legacy_gemm(
        av: &[f32],
        bv: &[f32],
        m: usize,
        k: usize,
        n: usize,
        trans_a: bool,
        trans_b: bool,
        acc: bool,
        out: &mut [f32],
    ) {
        if !acc && !trans_b {
            out.fill(0.0);
        }
        let a_at = |i: usize, p: usize| if trans_a { av[p * m + i] } else { av[i * k + p] };
        if !trans_b {
            for i in 0..m {
                for p in 0..k {
                    let a_ip = a_at(i, p);
                    if a_ip == 0.0 {
                        continue;
                    }
                    for j in 0..n {
                        out[i * n + j] += a_ip * bv[p * n + j];
                    }
                }
            }
        } else {
            for i in 0..m {
                for j in 0..n {
                    let mut sum = 0.0;
                    for p in 0..k {
                        let x = a_at(i, p);
                        if x == 0.0 {
                            continue;
                        }
                        sum += x * bv[j * k + p];
                    }
                    if acc {
                        out[i * n + j] += sum;
                    } else {
                        out[i * n + j] = sum;
                    }
                }
            }
        }
    }

    /// Deterministic value stream with deliberate exact zeros, negative
    /// zeros and subnormals sprinkled in — the adversarial cases for
    /// the zero-skip/bit-identity argument.
    fn stream(seed: u64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = seed
                    .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                    .wrapping_mul(0x2545_F491_4F6C_DD1D);
                match (x >> 60) & 0xF {
                    0 | 1 => 0.0,
                    2 => -0.0,
                    3 => f32::from_bits(((x >> 32) & 0x3F) as u32), // subnormal
                    _ => ((x >> 40) % 4096) as f32 / 512.0 - 4.0,
                }
            })
            .collect()
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn packed_matches_legacy_all_variants_and_sizes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (1, 7, 1),
            (3, 1, 5),
            (4, 16, 16),
            (5, 9, 17),
            (16, 33, 16),
            (17, 16, 31),
            (33, 48, 29),
            (64, 64, 64),
        ] {
            for ta in [false, true] {
                for tb in [false, true] {
                    for acc in [false, true] {
                        let av = stream(m as u64 * 31 + k as u64, m * k);
                        let bv = stream(n as u64 * 17 + 5, k * n);
                        let c0 = stream(9999, m * n);
                        let mut want = c0.clone();
                        legacy_gemm(&av, &bv, m, k, n, ta, tb, acc, &mut want);
                        let mut got = c0.clone();
                        gemm(
                            &av,
                            &bv,
                            m,
                            k,
                            n,
                            KernCfg { trans_a: ta, trans_b: tb, acc, parallel: false },
                            Epilogue::None,
                            &mut got,
                        );
                        assert_eq!(
                            bits(&want),
                            bits(&got),
                            "divergence at m={m} k={k} n={n} ta={ta} tb={tb} acc={acc}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn packed_is_thread_count_invariant() {
        let (m, k, n) = (67, 33, 41);
        let av = stream(3, m * k);
        let bv = stream(4, k * n);
        rt_par::set_threads(1);
        let mut reference = vec![0.0; m * n];
        gemm(
            &av,
            &bv,
            m,
            k,
            n,
            KernCfg { trans_a: false, trans_b: false, acc: false, parallel: true },
            Epilogue::None,
            &mut reference,
        );
        for threads in [4usize, 7] {
            rt_par::set_threads(threads);
            let mut got = vec![0.0; m * n];
            gemm(
                &av,
                &bv,
                m,
                k,
                n,
                KernCfg { trans_a: false, trans_b: false, acc: false, parallel: true },
                Epilogue::None,
                &mut got,
            );
            rt_par::set_threads(1);
            assert_eq!(bits(&reference), bits(&got), "threads={threads}");
        }
    }

    #[test]
    fn fused_epilogue_matches_unfused() {
        let (m, k, n) = (13, 21, 19);
        let av = stream(7, m * k);
        let bv = stream(8, k * n);
        let bias_col = stream(9, n);
        let bias_row = stream(10, m);
        // Column bias (+ReLU): gemm then add-per-column then max(0).
        let mut want = vec![0.0; m * n];
        legacy_gemm(&av, &bv, m, k, n, false, false, false, &mut want);
        for i in 0..m {
            for j in 0..n {
                want[i * n + j] = (want[i * n + j] + bias_col[j]).max(0.0);
            }
        }
        let mut got = vec![0.0; m * n];
        gemm(
            &av,
            &bv,
            m,
            k,
            n,
            KernCfg { trans_a: false, trans_b: false, acc: false, parallel: false },
            Epilogue::BiasColRelu(&bias_col),
            &mut got,
        );
        assert_eq!(bits(&want), bits(&got));
        // Row bias, no ReLU.
        let mut want_r = vec![0.0; m * n];
        legacy_gemm(&av, &bv, m, k, n, false, false, false, &mut want_r);
        for i in 0..m {
            for j in 0..n {
                want_r[i * n + j] += bias_row[i];
            }
        }
        let mut got_r = vec![0.0; m * n];
        gemm(
            &av,
            &bv,
            m,
            k,
            n,
            KernCfg { trans_a: false, trans_b: false, acc: false, parallel: false },
            Epilogue::BiasRow(&bias_row),
            &mut got_r,
        );
        assert_eq!(bits(&want_r), bits(&got_r));
    }

    #[test]
    fn prepacked_paths_match_one_shot() {
        let (m, k, n) = (24, 40, 30);
        let av = stream(21, m * k);
        let bv = stream(22, k * n);
        let mut want = vec![0.0; m * n];
        gemm(
            &av,
            &bv,
            m,
            k,
            n,
            KernCfg { trans_a: false, trans_b: false, acc: false, parallel: false },
            Epilogue::None,
            &mut want,
        );
        // A prepacked once, B raw per call.
        let pa = PackedA::pack(&av, m, k, false);
        let mut got = vec![0.0; m * n];
        gemm_a_prepacked(&pa, &bv, n, false, false, Epilogue::None, &mut got);
        assert_eq!(bits(&want), bits(&got));
        // Both prepacked.
        let mut bpack = vec![0.0; packed_b_len(k, n)];
        pack_b(&mut bpack, &bv, k, n, false);
        let mut got2 = vec![0.0; m * n];
        gemm_ab_prepacked(&pa, &bpack, n, false, Epilogue::None, &mut got2);
        assert_eq!(bits(&want), bits(&got2));
        // Accumulating prepacked (trans_b = false rule: seed from C).
        let c0 = stream(77, m * n);
        let mut want_acc = c0.clone();
        gemm(
            &av,
            &bv,
            m,
            k,
            n,
            KernCfg { trans_a: false, trans_b: false, acc: true, parallel: false },
            Epilogue::None,
            &mut want_acc,
        );
        let mut got_acc = c0.clone();
        gemm_a_prepacked(&pa, &bv, n, false, true, Epilogue::None, &mut got_acc);
        assert_eq!(bits(&want_acc), bits(&got_acc));
    }

    #[test]
    fn steady_state_gemm_leases_are_allocation_free() {
        crate::pool::set_enabled(true);
        let (m, k, n) = (32, 32, 32);
        let av = stream(1, m * k);
        let bv = stream(2, k * n);
        let mut out = vec![0.0; m * n];
        let cfg = KernCfg { trans_a: false, trans_b: false, acc: false, parallel: false };
        gemm(&av, &bv, m, k, n, cfg, Epilogue::None, &mut out); // warm
        crate::pool::reset_thread_stats();
        gemm(&av, &bv, m, k, n, cfg, Epilogue::None, &mut out);
        let s = crate::pool::thread_stats();
        assert_eq!(s.misses, 0, "second identical gemm must not allocate");
        assert!(s.hits >= 2, "panel buffers should lease from the pool");
    }
}
