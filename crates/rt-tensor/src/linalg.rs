//! Matrix multiplication and transpose kernels.
//!
//! The convolution lowering in [`crate::conv`] and every linear layer in the
//! workspace funnel through [`matmul`] / [`matmul_acc`], so these are the
//! hottest loops in the reproduction. The implementation is a straightforward
//! ikj-ordered triple loop, which keeps the inner loop contiguous in both the
//! right operand and the output — the best memory pattern achievable for
//! row-major buffers without blocking, and within ~2× of a tuned micro-kernel
//! at the matrix sizes this workspace uses (≤ a few hundred per side).

use crate::{Result, Tensor, TensorError};

fn as_matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
            op,
        });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// Computes `C = A × B` for rank-2 tensors `A: [m, k]`, `B: [k, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDim`] when the inner dimensions disagree.
///
/// # Example
///
/// ```rust
/// use rt_tensor::{linalg, Tensor};
///
/// # fn main() -> Result<(), rt_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let identity = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0])?;
/// assert_eq!(linalg::matmul(&a, &identity)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, _) = as_matrix(a, "matmul")?;
    let (_, n) = as_matrix(b, "matmul")?;
    let mut out = Tensor::zeros(&[m, n]);
    matmul_acc(a, b, &mut out)?;
    Ok(out)
}

/// Accumulating matrix multiply: `C += A × B`.
///
/// Lets callers reuse an output buffer across minibatch loops (gradient
/// accumulation does this).
///
/// # Errors
///
/// Same conditions as [`matmul`], plus [`TensorError::ShapeMismatch`] if `c`
/// is not `[m, n]`.
pub fn matmul_acc(a: &Tensor, b: &Tensor, c: &mut Tensor) -> Result<()> {
    let (m, k) = as_matrix(a, "matmul")?;
    let (k2, n) = as_matrix(b, "matmul")?;
    if k != k2 {
        return Err(TensorError::MatmulDim {
            lhs: [m, k],
            rhs: [k2, n],
        });
    }
    if c.shape() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            lhs: c.shape().to_vec(),
            rhs: vec![m, n],
            op: "matmul_acc",
        });
    }
    let av = a.data();
    let bv = b.data();
    let cv = c.data_mut();
    for i in 0..m {
        let a_row = &av[i * k..(i + 1) * k];
        let c_row = &mut cv[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue; // sparse weights after pruning make this branch pay
            }
            let b_row = &bv[p * n..(p + 1) * n];
            for (c_el, &b_el) in c_row.iter_mut().zip(b_row) {
                *c_el += a_ip * b_el;
            }
        }
    }
    Ok(())
}

/// Computes `C = Aᵀ × B` without materializing the transpose.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::MatmulDim`] as for
/// [`matmul`] (with `A`'s dimensions read post-transpose).
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = as_matrix(a, "matmul_at_b")?;
    let (k2, n) = as_matrix(b, "matmul_at_b")?;
    if k != k2 {
        return Err(TensorError::MatmulDim {
            lhs: [m, k],
            rhs: [k2, n],
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.data();
    let bv = b.data();
    let ov = out.data_mut();
    // out[i, j] = sum_p a[p, i] * b[p, j]; iterate p outer for contiguity.
    for p in 0..k {
        let a_row = &av[p * m..(p + 1) * m];
        let b_row = &bv[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let o_row = &mut ov[i * n..(i + 1) * n];
            for (o_el, &b_el) in o_row.iter_mut().zip(b_row) {
                *o_el += a_pi * b_el;
            }
        }
    }
    Ok(out)
}

/// Computes `C = A × Bᵀ` without materializing the transpose.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] / [`TensorError::MatmulDim`] as for
/// [`matmul`] (with `B`'s dimensions read post-transpose).
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = as_matrix(a, "matmul_a_bt")?;
    let (n, k2) = as_matrix(b, "matmul_a_bt")?;
    if k != k2 {
        return Err(TensorError::MatmulDim {
            lhs: [m, k],
            rhs: [k2, n],
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let av = a.data();
    let bv = b.data();
    let ov = out.data_mut();
    for i in 0..m {
        let a_row = &av[i * k..(i + 1) * k];
        let o_row = &mut ov[i * n..(i + 1) * n];
        for (j, o_el) in o_row.iter_mut().enumerate() {
            let b_row = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            *o_el = acc;
        }
    }
    Ok(out)
}

/// Returns the transpose of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix input.
pub fn transpose(t: &Tensor) -> Result<Tensor> {
    let (m, n) = as_matrix(t, "transpose")?;
    let mut out = Tensor::zeros(&[n, m]);
    let tv = t.data();
    let ov = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            ov[j * m + i] = tv[i * n + j];
        }
    }
    Ok(out)
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` where the eigenvectors are the
/// *columns* of the returned matrix `V`, so `A = V · diag(λ) · Vᵀ`.
/// Eigenvalues are unordered. Convergence is to a fixed off-diagonal
/// Frobenius tolerance; `max_sweeps` bounds the work for pathological
/// inputs (15 sweeps is plenty for the ≤256×256 covariance matrices FID
/// uses).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix input and
/// [`TensorError::ShapeMismatch`] for a non-square matrix. Symmetry is the
/// caller's responsibility; the routine reads only the upper triangle's
/// mirror through symmetrization internally.
pub fn sym_eigen(a: &Tensor, max_sweeps: usize) -> Result<(Vec<f32>, Tensor)> {
    let (n, m) = as_matrix(a, "sym_eigen")?;
    if n != m {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![n, m],
            rhs: vec![n, n],
            op: "sym_eigen",
        });
    }
    // Work on a symmetrized copy to be robust to tiny asymmetries.
    let mut w: Vec<f32> = (0..n * n)
        .map(|i| {
            let (r, c) = (i / n, i % n);
            0.5 * (a.data()[r * n + c] + a.data()[c * n + r])
        })
        .collect();
    let mut v = vec![0.0f32; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let tol = 1e-10_f32 * w.iter().map(|&x| x * x).sum::<f32>().max(f32::MIN_POSITIVE);
    for _ in 0..max_sweeps {
        let off: f32 = (0..n)
            .flat_map(|r| ((r + 1)..n).map(move |c| (r, c)))
            .map(|(r, c)| w[r * n + c] * w[r * n + c])
            .sum();
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = w[p * n + q];
                if apq.abs() < 1e-12 {
                    continue;
                }
                let app = w[p * n + p];
                let aqq = w[q * n + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, θ) on both sides of W.
                for k in 0..n {
                    let wkp = w[k * n + p];
                    let wkq = w[k * n + q];
                    w[k * n + p] = c * wkp - s * wkq;
                    w[k * n + q] = s * wkp + c * wkq;
                }
                for k in 0..n {
                    let wpk = w[p * n + k];
                    let wqk = w[q * n + k];
                    w[p * n + k] = c * wpk - s * wqk;
                    w[q * n + k] = s * wpk + c * wqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eigvals: Vec<f32> = (0..n).map(|i| w[i * n + i]).collect();
    Ok((eigvals, Tensor::from_vec(vec![n, n], v)?))
}

/// Dot product of two equal-length rank-1 tensors.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if lengths differ.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f32> {
    if a.len() != b.len() {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
            op: "dot",
        });
    }
    Ok(a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec()).unwrap()
    }

    #[test]
    fn small_matmul() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let eye = t(&[2, 2], &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &eye).unwrap(), a);
        assert_eq!(matmul(&eye, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = t(&[2, 3], &[0.0; 6]);
        let b = t(&[2, 3], &[0.0; 6]);
        assert!(matches!(matmul(&a, &b), Err(TensorError::MatmulDim { .. })));
        let v = t(&[3], &[0.0; 3]);
        assert!(matches!(
            matmul(&a, &v),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t(&[3, 2], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 4], &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let at = transpose(&a).unwrap();
        let expect = matmul(&at, &b).unwrap();
        let got = matmul_at_b(&a, &b).unwrap();
        assert_eq!(got, expect);

        let c = t(&[4, 2], &(0..8).map(|i| i as f32 - 3.0).collect::<Vec<_>>());
        let ct = transpose(&c).unwrap();
        let expect2 = matmul(&at, &ct).unwrap_err(); // 2x3 * 2x4 is invalid
        assert!(matches!(expect2, TensorError::MatmulDim { .. }));

        let d = t(&[2, 2], &[1.0, -1.0, 0.5, 2.0]);
        let dt = transpose(&d).unwrap();
        let lhs = t(&[3, 2], &[1.0, 0.0, 0.0, 1.0, 2.0, 2.0]);
        assert_eq!(matmul_a_bt(&lhs, &d).unwrap(), matmul(&lhs, &dt).unwrap());
    }

    #[test]
    fn matmul_acc_accumulates() {
        let a = t(&[1, 2], &[1.0, 1.0]);
        let b = t(&[2, 1], &[2.0, 3.0]);
        let mut c = Tensor::full(&[1, 1], 10.0);
        matmul_acc(&a, &b, &mut c).unwrap();
        assert_eq!(c.data(), &[15.0]);
        // Wrong output shape is rejected.
        let mut bad = Tensor::zeros(&[2, 2]);
        assert!(matmul_acc(&a, &b, &mut bad).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let back = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn dot_product() {
        let a = t(&[3], &[1.0, 2.0, 3.0]);
        let b = t(&[3], &[4.0, 5.0, 6.0]);
        assert_eq!(dot(&a, &b).unwrap(), 32.0);
        let c = t(&[2], &[1.0, 1.0]);
        assert!(dot(&a, &c).is_err());
    }

    #[test]
    fn sym_eigen_diagonal_matrix() {
        let a = t(&[3, 3], &[2.0, 0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0, 5.0]);
        let (vals, _) = sym_eigen(&a, 15).unwrap();
        let mut sorted = vals.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((sorted[0] + 1.0).abs() < 1e-5);
        assert!((sorted[1] - 2.0).abs() < 1e-5);
        assert!((sorted[2] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn sym_eigen_reconstructs_matrix() {
        // A = V diag(λ) Vᵀ must reproduce the input.
        let a = t(&[3, 3], &[4.0, 1.0, -2.0, 1.0, 3.0, 0.5, -2.0, 0.5, 6.0]);
        let (vals, v) = sym_eigen(&a, 30).unwrap();
        let mut d = Tensor::zeros(&[3, 3]);
        for (i, &val) in vals.iter().enumerate() {
            d.data_mut()[i * 3 + i] = val;
        }
        let vt = transpose(&v).unwrap();
        let recon = matmul(&matmul(&v, &d).unwrap(), &vt).unwrap();
        for (x, y) in recon.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
        // Eigenvectors are orthonormal: VᵀV = I.
        let vtv = matmul(&vt, &v).unwrap();
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((vtv.at(&[r, c]).unwrap() - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn sym_eigen_psd_eigenvalues_nonnegative() {
        // Gram matrix BᵀB is PSD: all eigenvalues >= 0 (up to roundoff).
        let b = t(
            &[4, 3],
            &[
                1.0, 2.0, 0.5, -1.0, 0.3, 2.0, 0.0, 1.0, 1.0, 2.0, -0.5, 0.25,
            ],
        );
        let gram = matmul_at_b(&b, &b).unwrap();
        let (vals, _) = sym_eigen(&gram, 30).unwrap();
        for v in vals {
            assert!(v > -1e-4, "PSD eigenvalue {v}");
        }
    }

    #[test]
    fn sym_eigen_rejects_non_square() {
        let a = t(&[2, 3], &[0.0; 6]);
        assert!(sym_eigen(&a, 10).is_err());
    }

    #[test]
    fn sparse_rows_are_skipped_correctly() {
        // Zero entries in A must not change the result (fast-path guard).
        let a = t(&[2, 3], &[0.0, 2.0, 0.0, 4.0, 0.0, 6.0]);
        let b = t(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[18.0, 20.0, 94.0, 104.0]);
    }
}
