//! Matrix multiplication and transpose kernels.
//!
//! The convolution lowering in [`crate::conv`] and every linear layer in the
//! workspace funnel through the unified [`gemm`] entry point, so this is the
//! hottest loop in the reproduction. All four operand layouts (`A×B`,
//! `Aᵀ×B`, `A×Bᵀ`, `Aᵀ×Bᵀ`) and the accumulate-vs-overwrite choice are
//! expressed by one [`Gemm`] descriptor, which means parallel row tiling
//! lives in exactly one kernel instead of four near-duplicates.
//!
//! Each layout keeps the memory pattern that is best for row-major buffers:
//! ikj-ordered for the plain and accumulating variants, p-outer for `Aᵀ×B`,
//! and a dot-product inner loop for `A×Bᵀ`.
//!
//! # Zero-skip policy
//!
//! **Every** layout skips multiply-add terms whose `A` element is exactly
//! `0.0` (of either sign). This is one documented policy, not an incidental
//! optimization, and all four kernels implement it identically so that the
//! masked-dense path and the `rt-sparse` compiled paths agree in both cost
//! model and float semantics:
//!
//! * *Cost*: pruned weights (`A` = weights in conv forward / `Wᵀ×dY`) and
//!   post-ReLU activations (`A` = activations in linear forward, `A` = dY
//!   in the gradient products) make the branch pay everywhere.
//! * *Bit-exactness*: skipping a `±0.0·b` term never changes the
//!   accumulator bits. Under round-to-nearest an accumulator that starts at
//!   `+0.0` can never become `-0.0` (exact cancellation of nonzeros yields
//!   `+0.0`, and `+0.0 + ±0.0 = +0.0`), so adding a zero-product term is
//!   the identity. The sparse kernels in `rt-sparse` rely on exactly this
//!   property to stay bit-identical to these dense kernels while visiting
//!   only the mask's support.
//!
//! # Determinism
//!
//! [`gemm`] fans output-row tiles out over the [`rt_par`] pool. Tile
//! boundaries are a pure function of the problem shape (never the thread
//! count), every tile owns a disjoint row range of `C`, and within a tile
//! the float-operation order is exactly the serial kernel's — so results are
//! bit-identical for every `RT_THREADS` setting, including 1.
//!
//! # Kernel dispatch
//!
//! Shapes past [`crate::kern::worth_packing`]'s threshold run on the
//! cache-blocked packed micro-kernels in [`crate::kern`]; small shapes
//! stay on the legacy in-place loops below, whose packing passes would
//! cost more than they save. The packed kernels replicate the zero-skip
//! and per-element accumulation order exactly, so **both kernels produce
//! identical bytes for every input** — the dispatch (and the `RT_KERN=0`
//! kill-switch, plus [`gemm_via`]'s explicit override) can never change
//! results, only wall-clock time. `bench_kernels` gates on both the
//! bit-identity and the packed kernel's speedup.

use crate::{kern, Result, Tensor, TensorError};

fn as_matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
            op,
        });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// Operand layout + accumulation descriptor for [`gemm`].
///
/// The default is the plain overwrite product `C = A × B`. Builder-style
/// toggles select transposed reads (without materializing the transpose)
/// and `+=` accumulation into the output:
///
/// ```rust
/// use rt_tensor::linalg::Gemm;
///
/// let cfg = Gemm::new().trans_b().acc(); // C += A × Bᵀ
/// assert!(cfg.trans_b && cfg.acc && !cfg.trans_a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Gemm {
    /// Read `A` transposed: its stored shape is `[k, m]`.
    pub trans_a: bool,
    /// Read `B` transposed: its stored shape is `[n, k]`.
    pub trans_b: bool,
    /// Accumulate (`C += …`) instead of overwriting (`C = …`).
    pub acc: bool,
}

impl Gemm {
    /// Plain `C = A × B`.
    pub fn new() -> Self {
        Gemm::default()
    }

    /// Returns a copy that reads `A` transposed.
    pub fn trans_a(mut self) -> Self {
        self.trans_a = true;
        self
    }

    /// Returns a copy that reads `B` transposed.
    pub fn trans_b(mut self) -> Self {
        self.trans_b = true;
        self
    }

    /// Returns a copy that accumulates into the output.
    pub fn acc(mut self) -> Self {
        self.acc = true;
        self
    }
}

/// Target number of inner-loop multiply-adds per parallel task. Tile sizes
/// derive from this and the problem shape only, keeping chunk boundaries
/// independent of the thread count (the determinism contract of [`rt_par`]).
const GEMM_GRAIN: usize = 1 << 15;

/// Rows of `C` per parallel tile — a pure function of the problem shape.
fn row_tile(m: usize, k: usize, n: usize) -> usize {
    let per_row = k.saturating_mul(n).max(1);
    (GEMM_GRAIN / per_row).clamp(1, m.max(1))
}

/// General matrix multiply: `C (+)= op(A) × op(B)` where `op` optionally
/// transposes each operand (reading in place — no transpose is
/// materialized) and [`Gemm::acc`] selects `+=` over `=`.
///
/// Effective dimensions are `op(A): [m, k]`, `op(B): [k, n]`,
/// `out: [m, n]`. Output-row tiles run on the global [`rt_par`] pool;
/// results are bit-identical for every thread count (see module docs).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs,
/// [`TensorError::MatmulDim`] when the effective inner dimensions disagree
/// (reported post-transpose), and [`TensorError::ShapeMismatch`] if `out`
/// is not `[m, n]`.
///
/// # Example
///
/// ```rust
/// use rt_tensor::{linalg, linalg::Gemm, Tensor};
///
/// # fn main() -> Result<(), rt_tensor::TensorError> {
/// let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let identity = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0])?;
/// let mut out = Tensor::zeros(&[2, 2]);
/// linalg::gemm(&a, &identity, Gemm::new(), &mut out)?;
/// assert_eq!(out, a);
/// # Ok(())
/// # }
/// ```
pub fn gemm(a: &Tensor, b: &Tensor, cfg: Gemm, out: &mut Tensor) -> Result<()> {
    gemm_via(Kernel::Auto, a, b, cfg, out)
}

/// Kernel selector for [`gemm_via`]: both kernels produce identical
/// bytes, so this only trades wall-clock time (benches and bit-identity
/// proptests pin each side explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Packed micro-kernels when enabled and worth it, legacy otherwise.
    #[default]
    Auto,
    /// Force the cache-blocked packed path ([`crate::kern`]).
    Packed,
    /// Force the legacy in-place loops.
    Legacy,
}

/// [`gemm`] with an explicit kernel choice — see [`Kernel`].
///
/// # Errors
///
/// Exactly as [`gemm`].
pub fn gemm_via(kernel: Kernel, a: &Tensor, b: &Tensor, cfg: Gemm, out: &mut Tensor) -> Result<()> {
    let (ar, ac) = as_matrix(a, "gemm")?;
    let (br, bc) = as_matrix(b, "gemm")?;
    let (m, k) = if cfg.trans_a { (ac, ar) } else { (ar, ac) };
    let (k2, n) = if cfg.trans_b { (bc, br) } else { (br, bc) };
    if k != k2 {
        return Err(TensorError::MatmulDim {
            lhs: [m, k],
            rhs: [k2, n],
        });
    }
    if out.shape() != [m, n] {
        return Err(TensorError::ShapeMismatch {
            lhs: out.shape().to_vec(),
            rhs: vec![m, n],
            op: "gemm",
        });
    }
    let use_packed = match kernel {
        Kernel::Packed => true,
        Kernel::Legacy => false,
        Kernel::Auto => kern::enabled() && kern::worth_packing(m, k, n),
    };
    if use_packed {
        kern::gemm(
            a.data(),
            b.data(),
            m,
            k,
            n,
            kern::KernCfg {
                trans_a: cfg.trans_a,
                trans_b: cfg.trans_b,
                acc: cfg.acc,
                parallel: true,
            },
            kern::Epilogue::None,
            out.data_mut(),
        );
        return Ok(());
    }
    let av = a.data();
    let bv = b.data();
    // The ikj and p-outer kernels are accumulate-based; overwrite mode is
    // "zero, then accumulate", exactly as the historical entry points that
    // allocated `Tensor::zeros` did. The dot-product kernels assign/add per
    // element instead (zero-fill + add would flip the sign of -0.0 results).
    if !cfg.acc && !cfg.trans_b {
        out.data_mut().fill(0.0);
    }
    let tile = row_tile(m, k, n);
    let acc = cfg.acc;
    match (cfg.trans_a, cfg.trans_b) {
        // C (+)= A × B — ikj order, zero-skip on A. Output rows are
        // independent; a tile replays the serial float order for its rows.
        (false, false) => rt_par::par_chunks_mut(out.data_mut(), tile * n, |t, out_tile| {
            let row0 = t * tile;
            for (r, c_row) in out_tile.chunks_mut(n).enumerate() {
                let i = row0 + r;
                let a_row = &av[i * k..(i + 1) * k];
                for (p, &a_ip) in a_row.iter().enumerate() {
                    if a_ip == 0.0 {
                        continue; // sparse weights after pruning make this pay
                    }
                    let b_row = &bv[p * n..(p + 1) * n];
                    for (c_el, &b_el) in c_row.iter_mut().zip(b_row) {
                        *c_el += a_ip * b_el;
                    }
                }
            }
        }),
        // C (+)= Aᵀ × B — p-outer for contiguity, restricted to the tile's
        // rows. For each element the accumulation order over p is still
        // 0..k, so floats match the serial kernel bit-for-bit.
        (true, false) => rt_par::par_chunks_mut(out.data_mut(), tile * n, |t, out_tile| {
            let row0 = t * tile;
            let rows = out_tile.len() / n;
            for p in 0..k {
                let a_row = &av[p * m..(p + 1) * m];
                let b_row = &bv[p * n..(p + 1) * n];
                for r in 0..rows {
                    let a_pi = a_row[row0 + r];
                    if a_pi == 0.0 {
                        continue;
                    }
                    let o_row = &mut out_tile[r * n..(r + 1) * n];
                    for (o_el, &b_el) in o_row.iter_mut().zip(b_row) {
                        *o_el += a_pi * b_el;
                    }
                }
            }
        }),
        // C (+)= A × Bᵀ — independent dot products per element, with the
        // unified zero-skip on A (see module docs: skipping a ±0.0 product
        // is the identity on a fresh accumulator, so this changes no bits).
        (false, true) => rt_par::par_chunks_mut(out.data_mut(), tile * n, |t, out_tile| {
            let row0 = t * tile;
            for (r, o_row) in out_tile.chunks_mut(n).enumerate() {
                let i = row0 + r;
                let a_row = &av[i * k..(i + 1) * k];
                for (j, o_el) in o_row.iter_mut().enumerate() {
                    let b_row = &bv[j * k..(j + 1) * k];
                    let mut sum = 0.0;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        if x == 0.0 {
                            continue; // unified zero-skip policy
                        }
                        sum += x * y;
                    }
                    if acc {
                        *o_el += sum;
                    } else {
                        *o_el = sum;
                    }
                }
            }
        }),
        // C (+)= Aᵀ × Bᵀ — strided dot products with the same unified
        // zero-skip on A.
        (true, true) => rt_par::par_chunks_mut(out.data_mut(), tile * n, |t, out_tile| {
            let row0 = t * tile;
            for (r, o_row) in out_tile.chunks_mut(n).enumerate() {
                let i = row0 + r;
                for (j, o_el) in o_row.iter_mut().enumerate() {
                    let mut sum = 0.0;
                    for p in 0..k {
                        let x = av[p * m + i];
                        if x == 0.0 {
                            continue; // unified zero-skip policy
                        }
                        sum += x * bv[j * k + p];
                    }
                    if acc {
                        *o_el += sum;
                    } else {
                        *o_el = sum;
                    }
                }
            }
        }),
    }
    Ok(())
}

/// Returns the transpose of a rank-2 tensor.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix input.
pub fn transpose(t: &Tensor) -> Result<Tensor> {
    let (m, n) = as_matrix(t, "transpose")?;
    let mut out = Tensor::zeros(&[n, m]);
    let tv = t.data();
    let ov = out.data_mut();
    for i in 0..m {
        for j in 0..n {
            ov[j * m + i] = tv[i * n + j];
        }
    }
    Ok(out)
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` where the eigenvectors are the
/// *columns* of the returned matrix `V`, so `A = V · diag(λ) · Vᵀ`.
/// Eigenvalues are unordered. Convergence is to a fixed off-diagonal
/// Frobenius tolerance; `max_sweeps` bounds the work for pathological
/// inputs (15 sweeps is plenty for the ≤256×256 covariance matrices FID
/// uses).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix input and
/// [`TensorError::ShapeMismatch`] for a non-square matrix. Symmetry is the
/// caller's responsibility; the routine reads only the upper triangle's
/// mirror through symmetrization internally.
pub fn sym_eigen(a: &Tensor, max_sweeps: usize) -> Result<(Vec<f32>, Tensor)> {
    let (n, m) = as_matrix(a, "sym_eigen")?;
    if n != m {
        return Err(TensorError::ShapeMismatch {
            lhs: vec![n, m],
            rhs: vec![n, n],
            op: "sym_eigen",
        });
    }
    // Work on a symmetrized copy to be robust to tiny asymmetries.
    let mut w: Vec<f32> = (0..n * n)
        .map(|i| {
            let (r, c) = (i / n, i % n);
            0.5 * (a.data()[r * n + c] + a.data()[c * n + r])
        })
        .collect();
    let mut v = vec![0.0f32; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    let tol = 1e-10_f32 * w.iter().map(|&x| x * x).sum::<f32>().max(f32::MIN_POSITIVE);
    for _ in 0..max_sweeps {
        let off: f32 = (0..n)
            .flat_map(|r| ((r + 1)..n).map(move |c| (r, c)))
            .map(|(r, c)| w[r * n + c] * w[r * n + c])
            .sum();
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = w[p * n + q];
                if apq.abs() < 1e-12 {
                    continue;
                }
                let app = w[p * n + p];
                let aqq = w[q * n + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, θ) on both sides of W.
                for k in 0..n {
                    let wkp = w[k * n + p];
                    let wkq = w[k * n + q];
                    w[k * n + p] = c * wkp - s * wkq;
                    w[k * n + q] = s * wkp + c * wkq;
                }
                for k in 0..n {
                    let wpk = w[p * n + k];
                    let wqk = w[q * n + k];
                    w[p * n + k] = c * wpk - s * wqk;
                    w[q * n + k] = s * wpk + c * wqk;
                }
                // Accumulate eigenvectors.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eigvals: Vec<f32> = (0..n).map(|i| w[i * n + i]).collect();
    Ok((eigvals, Tensor::from_vec(vec![n, n], v)?))
}

/// Dot product of two equal-length rank-1 tensors.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if lengths differ.
pub fn dot(a: &Tensor, b: &Tensor) -> Result<f32> {
    if a.len() != b.len() {
        return Err(TensorError::ShapeMismatch {
            lhs: a.shape().to_vec(),
            rhs: b.shape().to_vec(),
            op: "dot",
        });
    }
    Ok(a.data().iter().zip(b.data()).map(|(&x, &y)| x * y).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(shape.to_vec(), data.to_vec()).unwrap()
    }

    /// Overwrite-mode gemm convenience for tests: `op(A) × op(B)`.
    fn run(a: &Tensor, b: &Tensor, cfg: Gemm) -> Result<Tensor> {
        let (ar, ac) = (a.shape()[0], a.shape()[1]);
        let (br, bc) = (b.shape()[0], b.shape()[1]);
        let m = if cfg.trans_a { ac } else { ar };
        let n = if cfg.trans_b { br } else { bc };
        let mut out = Tensor::zeros(&[m, n]);
        gemm(a, b, cfg, &mut out)?;
        Ok(out)
    }

    fn mm(a: &Tensor, b: &Tensor) -> Tensor {
        run(a, b, Gemm::new()).unwrap()
    }

    #[test]
    fn small_matmul() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = mm(&a, &b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let eye = t(&[2, 2], &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(mm(&a, &eye), a);
        assert_eq!(mm(&eye, &a), a);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = t(&[2, 3], &[0.0; 6]);
        let b = t(&[2, 3], &[0.0; 6]);
        assert!(matches!(
            run(&a, &b, Gemm::new()),
            Err(TensorError::MatmulDim { .. })
        ));
        let v = t(&[3], &[0.0; 3]);
        let mut out = Tensor::zeros(&[2, 3]);
        assert!(matches!(
            gemm(&a, &v, Gemm::new(), &mut out),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn gemm_rejects_wrong_output_shape() {
        let a = t(&[2, 3], &[0.0; 6]);
        let b = t(&[3, 2], &[0.0; 6]);
        let mut bad = Tensor::zeros(&[3, 3]);
        assert!(matches!(
            gemm(&a, &b, Gemm::new(), &mut bad),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transposed_variants_agree_with_explicit_transpose() {
        let a = t(&[3, 2], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(&[3, 4], &(0..12).map(|i| i as f32).collect::<Vec<_>>());
        let at = transpose(&a).unwrap();
        let expect = mm(&at, &b);
        let got = run(&a, &b, Gemm::new().trans_a()).unwrap();
        assert_eq!(got, expect);

        let c = t(&[4, 2], &(0..8).map(|i| i as f32 - 3.0).collect::<Vec<_>>());
        let ct = transpose(&c).unwrap();
        let expect2 = run(&at, &ct, Gemm::new()).unwrap_err(); // 2x3 * 2x4 is invalid
        assert!(matches!(expect2, TensorError::MatmulDim { .. }));

        let d = t(&[2, 2], &[1.0, -1.0, 0.5, 2.0]);
        let dt = transpose(&d).unwrap();
        let lhs = t(&[3, 2], &[1.0, 0.0, 0.0, 1.0, 2.0, 2.0]);
        assert_eq!(run(&lhs, &d, Gemm::new().trans_b()).unwrap(), mm(&lhs, &dt));
    }

    #[test]
    fn double_transpose_gemm_matches_explicit() {
        let a = t(&[3, 2], &(0..6).map(|i| i as f32 - 2.5).collect::<Vec<_>>());
        let b = t(&[4, 3], &(0..12).map(|i| (i as f32).sin()).collect::<Vec<_>>());
        let at = transpose(&a).unwrap();
        let bt = transpose(&b).unwrap();
        let expect = mm(&at, &bt);
        let got = run(&a, &b, Gemm::new().trans_a().trans_b()).unwrap();
        assert_eq!(got.shape(), &[2, 4]);
        for (x, y) in got.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }

    #[test]
    fn gemm_acc_accumulates_in_every_layout() {
        let a = t(&[1, 2], &[1.0, 1.0]);
        let b = t(&[2, 1], &[2.0, 3.0]);
        let mut c = Tensor::full(&[1, 1], 10.0);
        gemm(&a, &b, Gemm::new().acc(), &mut c).unwrap();
        assert_eq!(c.data(), &[15.0]);
        // Wrong output shape is rejected.
        let mut bad = Tensor::zeros(&[2, 2]);
        assert!(gemm(&a, &b, Gemm::new().acc(), &mut bad).is_err());
        // trans_b with acc: C += A × Bᵀ.
        let bt = t(&[1, 2], &[2.0, 3.0]);
        let mut c2 = Tensor::full(&[1, 1], 10.0);
        gemm(&a, &bt, Gemm::new().trans_b().acc(), &mut c2).unwrap();
        assert_eq!(c2.data(), &[15.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let back = transpose(&transpose(&a).unwrap()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn dot_product() {
        let a = t(&[3], &[1.0, 2.0, 3.0]);
        let b = t(&[3], &[4.0, 5.0, 6.0]);
        assert_eq!(dot(&a, &b).unwrap(), 32.0);
        let c = t(&[2], &[1.0, 1.0]);
        assert!(dot(&a, &c).is_err());
    }

    #[test]
    fn sym_eigen_diagonal_matrix() {
        let a = t(&[3, 3], &[2.0, 0.0, 0.0, 0.0, -1.0, 0.0, 0.0, 0.0, 5.0]);
        let (vals, _) = sym_eigen(&a, 15).unwrap();
        let mut sorted = vals.clone();
        sorted.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!((sorted[0] + 1.0).abs() < 1e-5);
        assert!((sorted[1] - 2.0).abs() < 1e-5);
        assert!((sorted[2] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn sym_eigen_reconstructs_matrix() {
        // A = V diag(λ) Vᵀ must reproduce the input.
        let a = t(&[3, 3], &[4.0, 1.0, -2.0, 1.0, 3.0, 0.5, -2.0, 0.5, 6.0]);
        let (vals, v) = sym_eigen(&a, 30).unwrap();
        let mut d = Tensor::zeros(&[3, 3]);
        for (i, &val) in vals.iter().enumerate() {
            d.data_mut()[i * 3 + i] = val;
        }
        let vt = transpose(&v).unwrap();
        let recon = mm(&mm(&v, &d), &vt);
        for (x, y) in recon.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
        // Eigenvectors are orthonormal: VᵀV = I.
        let vtv = mm(&vt, &v);
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!((vtv.at(&[r, c]).unwrap() - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn sym_eigen_psd_eigenvalues_nonnegative() {
        // Gram matrix BᵀB is PSD: all eigenvalues >= 0 (up to roundoff).
        let b = t(
            &[4, 3],
            &[
                1.0, 2.0, 0.5, -1.0, 0.3, 2.0, 0.0, 1.0, 1.0, 2.0, -0.5, 0.25,
            ],
        );
        let gram = run(&b, &b, Gemm::new().trans_a()).unwrap();
        let (vals, _) = sym_eigen(&gram, 30).unwrap();
        for v in vals {
            assert!(v > -1e-4, "PSD eigenvalue {v}");
        }
    }

    #[test]
    fn sym_eigen_rejects_non_square() {
        let a = t(&[2, 3], &[0.0; 6]);
        assert!(sym_eigen(&a, 10).is_err());
    }

    #[test]
    fn zero_skip_policy_is_uniform_across_layouts() {
        // Zeros in A must not change the result bits in ANY layout — the
        // documented unified policy. B carries negatives so the skipped
        // terms would be -0.0 products; the pinned outputs are exactly
        // +0.0, which is what the rt-sparse kernels produce for dead rows
        // and what the ±0.0 identity argument in the module docs predicts.
        let a = t(&[2, 2], &[0.0, 0.0, 2.0, 0.0]);
        let b = t(&[2, 2], &[-1.0, -3.0, -2.0, -4.0]);
        for cfg in [
            Gemm::new(),
            Gemm::new().trans_a(),
            Gemm::new().trans_b(),
            Gemm::new().trans_a().trans_b(),
        ] {
            let got = run(&a, &b, cfg).unwrap();
            // Row/col of A that is entirely zero yields exactly +0.0.
            let zero_outputs: Vec<u32> = got
                .data()
                .iter()
                .filter(|v| **v == 0.0)
                .map(|v| v.to_bits())
                .collect();
            assert!(!zero_outputs.is_empty(), "{cfg:?} should have zero rows");
            for bits in zero_outputs {
                assert_eq!(bits, 0, "{cfg:?} produced -0.0 from skipped terms");
            }
        }
    }

    #[test]
    fn sparse_rows_are_skipped_correctly() {
        // Zero entries in A must not change the result (fast-path guard).
        let a = t(&[2, 3], &[0.0, 2.0, 0.0, 4.0, 0.0, 6.0]);
        let b = t(&[3, 2], &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = mm(&a, &b);
        assert_eq!(c.data(), &[18.0, 20.0, 94.0, 104.0]);
    }
}
