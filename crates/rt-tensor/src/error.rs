use std::fmt;

/// Error type for every fallible tensor operation in this crate.
///
/// All variants carry enough context to diagnose the failing call without a
/// debugger: the offending shapes or sizes are embedded in the variant.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two operands were required to have identical shapes but did not.
    ShapeMismatch {
        /// Shape of the left-hand operand.
        lhs: Vec<usize>,
        /// Shape of the right-hand operand.
        rhs: Vec<usize>,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A buffer's length did not match the element count implied by a shape.
    LengthMismatch {
        /// The requested shape.
        shape: Vec<usize>,
        /// Number of elements implied by `shape`.
        expected: usize,
        /// Number of elements actually provided.
        actual: usize,
    },
    /// The operation requires a tensor of a particular rank.
    RankMismatch {
        /// Required rank.
        expected: usize,
        /// Actual rank of the argument.
        actual: usize,
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// Inner dimensions of a matrix product did not agree.
    MatmulDim {
        /// `[m, k]` of the left operand.
        lhs: [usize; 2],
        /// `[k2, n]` of the right operand.
        rhs: [usize; 2],
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// The offending multi-index.
        index: Vec<usize>,
        /// The tensor shape.
        shape: Vec<usize>,
    },
    /// A shape with zero total elements (or a zero axis where it is invalid)
    /// was passed to an operation that requires a non-empty tensor.
    EmptyTensor {
        /// Name of the operation that failed.
        op: &'static str,
    },
    /// A convolution/pooling geometry was inconsistent (e.g. kernel larger
    /// than the padded input).
    InvalidGeometry {
        /// Human-readable description of the geometry violation.
        detail: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in `{op}`: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::LengthMismatch {
                shape,
                expected,
                actual,
            } => write!(
                f,
                "buffer length {actual} does not match shape {shape:?} (expected {expected})"
            ),
            TensorError::RankMismatch {
                expected,
                actual,
                op,
            } => write!(f, "`{op}` requires rank {expected}, got rank {actual}"),
            TensorError::MatmulDim { lhs, rhs } => write!(
                f,
                "matmul inner dimensions disagree: [{}, {}] x [{}, {}]",
                lhs[0], lhs[1], rhs[0], rhs[1]
            ),
            TensorError::IndexOutOfBounds { index, shape } => {
                write!(f, "index {index:?} out of bounds for shape {shape:?}")
            }
            TensorError::EmptyTensor { op } => {
                write!(f, "`{op}` requires a non-empty tensor")
            }
            TensorError::InvalidGeometry { detail } => {
                write!(f, "invalid geometry: {detail}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![3, 2],
            op: "add",
        };
        let msg = err.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.contains("[3, 2]"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn matmul_dim_display() {
        let err = TensorError::MatmulDim {
            lhs: [2, 3],
            rhs: [4, 5],
        };
        assert!(err.to_string().contains("[2, 3] x [4, 5]"));
    }
}
