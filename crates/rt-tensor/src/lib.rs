//! Dense `f32` tensor kernels for the `robust-tickets` workspace.
//!
//! This crate is the numerical substrate of the reproduction of
//! *"Robust Tickets Can Transfer Better"* (DAC 2023). It provides exactly the
//! operations the rest of the workspace needs — no more, no less:
//!
//! * [`Tensor`]: a contiguous, row-major, owned `f32` tensor with shape
//!   metadata, elementwise arithmetic, broadcasting against scalars and rows,
//!   and in-place variants of the hot-path operations.
//! * [`linalg`]: matrix multiplication (`sgemm`-style with accumulate) and
//!   2-D transposes, used by the linear layers and by im2col convolution.
//! * [`kern`]: cache-blocked, panel-packed GEMM micro-kernels — the fast
//!   path behind [`linalg::gemm`], bit-identical to the legacy loops
//!   (`RT_KERN=0` falls back).
//! * [`pool`]: the process-wide, thread-sharded scratch-buffer pool that
//!   makes steady-state train/infer steps allocation-free.
//! * [`conv`]: `im2col`/`col2im` lowering plus max/average pooling forward
//!   and backward kernels for NCHW activations.
//! * [`reduce`]: full and row-wise reductions (sum/mean/max/argmax).
//! * [`special`]: numerically stable `softmax`/`log_softmax`/`logsumexp`.
//! * [`init`]: Kaiming/Xavier/uniform weight initializers.
//! * [`rng`]: a [`SeedStream`](rng::SeedStream) splittable seed derivation
//!   utility so every experiment stage gets an independent, reproducible RNG.
//!
//! # Example
//!
//! ```rust
//! use rt_tensor::Tensor;
//!
//! # fn main() -> Result<(), rt_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
//! let b = Tensor::full(&[2, 2], 0.5);
//! let c = a.mul(&b)?;
//! assert_eq!(c.data(), &[0.5, 1.0, 1.5, 2.0]);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the `kern::simd` micro-kernel dispatch is
// the crate's single sanctioned `unsafe` surface (a runtime-checked
// `#[target_feature]` call — see its module docs for the soundness and
// bit-identity argument). Everything else stays safe; new `unsafe` needs
// an explicit, reviewed `#[allow]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod tensor;

pub mod conv;
pub mod init;
pub mod kern;
pub mod linalg;
pub mod pool;
pub mod reduce;
pub mod rng;
pub mod special;

pub use error::TensorError;
pub use tensor::Tensor;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;
