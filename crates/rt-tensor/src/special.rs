//! Numerically stable softmax-family functions over the rows of `[N, F]`
//! tensors. These back the cross-entropy loss, confidence-based OoD scores,
//! and calibration metrics.

use crate::{Result, Tensor, TensorError};

fn as_matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
            op,
        });
    }
    let (n, f) = (t.shape()[0], t.shape()[1]);
    if f == 0 {
        return Err(TensorError::EmptyTensor { op });
    }
    Ok((n, f))
}

/// Row-wise softmax of a `[N, F]` logit matrix.
///
/// Uses the max-subtraction trick, so arbitrarily large logits are safe.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-2 input and
/// [`TensorError::EmptyTensor`] for zero classes.
///
/// # Example
///
/// ```rust
/// use rt_tensor::{special, Tensor};
///
/// # fn main() -> Result<(), rt_tensor::TensorError> {
/// let logits = Tensor::from_vec(vec![1, 2], vec![0.0, 0.0])?;
/// let p = special::softmax_rows(&logits)?;
/// assert!((p.data()[0] - 0.5).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let (n, f) = as_matrix(logits, "softmax_rows")?;
    let mut out = logits.clone();
    let data = out.data_mut();
    for i in 0..n {
        let row = &mut data[i * f..(i + 1) * f];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            z += *v;
        }
        let inv = 1.0 / z;
        row.iter_mut().for_each(|v| *v *= inv);
    }
    Ok(out)
}

/// Row-wise log-softmax of a `[N, F]` logit matrix.
///
/// # Errors
///
/// Same conditions as [`softmax_rows`].
pub fn log_softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let (n, f) = as_matrix(logits, "log_softmax_rows")?;
    let mut out = logits.clone();
    let data = out.data_mut();
    for i in 0..n {
        let row = &mut data[i * f..(i + 1) * f];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln();
        row.iter_mut().for_each(|v| *v -= lse);
    }
    Ok(out)
}

/// Row-wise log-sum-exp of a `[N, F]` logit matrix, producing `[N]`.
///
/// `logsumexp` is the (negative) energy score used for OoD detection.
///
/// # Errors
///
/// Same conditions as [`softmax_rows`].
pub fn logsumexp_rows(logits: &Tensor) -> Result<Tensor> {
    let (n, f) = as_matrix(logits, "logsumexp_rows")?;
    let data = logits.data();
    let out: Vec<f32> = (0..n)
        .map(|i| {
            let row = &data[i * f..(i + 1) * f];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            m + row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln()
        })
        .collect();
    Tensor::from_vec(vec![n], out)
}

/// Elementwise logistic sigmoid.
pub fn sigmoid(t: &Tensor) -> Tensor {
    t.map(|x| 1.0 / (1.0 + (-x).exp()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let p = softmax_rows(&logits).unwrap();
        for i in 0..2 {
            let s: f32 = p.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Larger logit gets larger probability.
        assert!(p.at(&[0, 2]).unwrap() > p.at(&[0, 0]).unwrap());
    }

    #[test]
    fn softmax_is_stable_for_huge_logits() {
        let logits = Tensor::from_vec(vec![1, 2], vec![1e4, 1e4 - 1.0]).unwrap();
        let p = softmax_rows(&logits).unwrap();
        assert!(p.all_finite());
        assert!((p.data()[0] + p.data()[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let logits = Tensor::from_vec(vec![1, 4], vec![0.5, -0.5, 2.0, 1.0]).unwrap();
        let ls = log_softmax_rows(&logits).unwrap();
        let p = softmax_rows(&logits).unwrap();
        for (a, b) in ls.data().iter().zip(p.data()) {
            assert!((a - b.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn logsumexp_shift_invariance_relation() {
        // lse(x + c) = lse(x) + c
        let x = Tensor::from_vec(vec![1, 3], vec![0.1, 0.2, 0.3]).unwrap();
        let xc = x.add_scalar(5.0);
        let a = logsumexp_rows(&x).unwrap().data()[0];
        let b = logsumexp_rows(&xc).unwrap().data()[0];
        assert!((b - a - 5.0).abs() < 1e-5);
    }

    #[test]
    fn sigmoid_endpoints() {
        let t = Tensor::from_vec(vec![3], vec![-100.0, 0.0, 100.0]).unwrap();
        let s = sigmoid(&t);
        assert!(s.data()[0] < 1e-6);
        assert!((s.data()[1] - 0.5).abs() < 1e-7);
        assert!(s.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn rejects_empty_rows() {
        let t = Tensor::zeros(&[2, 0]);
        assert!(softmax_rows(&t).is_err());
    }
}
