use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A contiguous, row-major, owned `f32` tensor.
///
/// `Tensor` is deliberately simple: no views, no strides, no lazy evaluation.
/// Every operation either consumes/borrows contiguous buffers or produces a
/// new one. At the scale of this reproduction (micro-ResNets on 16×16 images)
/// this is faster and far less error-prone than a general strided design.
///
/// The flat buffer layout is row-major ("C order"): for shape `[d0, d1, d2]`
/// the element `(i, j, k)` lives at `((i * d1) + j) * d2 + k`.
///
/// # Example
///
/// ```rust
/// use rt_tensor::Tensor;
///
/// # fn main() -> Result<(), rt_tensor::TensorError> {
/// let t = Tensor::from_vec(vec![2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0])?;
/// assert_eq!(t.at(&[1, 2])?, 5.0);
/// assert_eq!(t.sum(), 15.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(try_from = "RawTensor", into = "RawTensor")]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

/// Serialization mirror of [`Tensor`] used to validate deserialized buffers.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RawTensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl TryFrom<RawTensor> for Tensor {
    type Error = TensorError;

    fn try_from(raw: RawTensor) -> Result<Self> {
        Tensor::from_vec(raw.shape, raw.data)
    }
}

impl From<Tensor> for RawTensor {
    fn from(t: Tensor) -> Self {
        RawTensor {
            shape: t.shape,
            data: t.data,
        }
    }
}

/// Computes the number of elements implied by a shape.
#[inline]
pub(crate) fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Fixed per-task element count for parallel elementwise kernels. Purely
/// elementwise operations are order-independent, so results are bitwise
/// identical to the serial loop at any grain; this value only bounds task
/// overhead on the [`rt_par`] pool.
const ELEM_GRAIN: usize = 8192;

/// Fixed chunk length for parallel reductions. Chunk partials are folded in
/// chunk order, so the result depends only on the tensor length — never the
/// thread count. Tensors at or below this size reduce in exactly the old
/// serial float order (single chunk).
const REDUCE_GRAIN: usize = 1 << 16;

impl Tensor {
    // ---------------------------------------------------------------------
    // Constructors
    // ---------------------------------------------------------------------

    /// Creates a tensor of zeros with the given shape.
    ///
    /// ```rust
    /// # use rt_tensor::Tensor;
    /// let t = Tensor::zeros(&[2, 2]);
    /// assert_eq!(t.sum(), 0.0);
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; numel(shape)],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the product of `shape`.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        let expected = numel(&shape);
        if data.len() != expected {
            return Err(TensorError::LengthMismatch {
                shape,
                expected,
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = numel(shape);
        Tensor {
            shape: shape.to_vec(),
            data: (0..n).map(&mut f).collect(),
        }
    }

    /// Creates a rank-0-like scalar tensor of shape `[1]`.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: vec![1],
            data: vec![value],
        }
    }

    // ---------------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------------

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Converts a multi-index into a flat offset.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if the index has the wrong
    /// rank or any coordinate exceeds its axis length.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.shape.len() || index.iter().zip(&self.shape).any(|(&i, &d)| i >= d) {
            return Err(TensorError::IndexOutOfBounds {
                index: index.to_vec(),
                shape: self.shape.clone(),
            });
        }
        let mut off = 0;
        for (&i, &d) in index.iter().zip(&self.shape) {
            off = off * d + i;
        }
        Ok(off)
    }

    /// Reads the element at a multi-index.
    ///
    /// # Errors
    ///
    /// See [`Tensor::offset`].
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.offset(index)?])
    }

    /// Writes the element at a multi-index.
    ///
    /// # Errors
    ///
    /// See [`Tensor::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Returns a copy with a new shape holding the same number of elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Self> {
        let mut out = self.clone();
        out.set_shape(shape)?;
        Ok(out)
    }

    /// Changes the shape in place (free — the buffer is untouched).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the element counts differ.
    pub fn set_shape(&mut self, shape: &[usize]) -> Result<()> {
        let expected = numel(shape);
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch {
                shape: shape.to_vec(),
                expected,
                actual: self.data.len(),
            });
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Extracts rows `[start, end)` of a rank-2 tensor as a new tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 input and
    /// [`TensorError::IndexOutOfBounds`] for an invalid row range.
    pub fn slice_rows(&self, start: usize, end: usize) -> Result<Self> {
        if self.ndim() < 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.ndim(),
                op: "slice_rows",
            });
        }
        let rows = self.shape[0];
        if start > end || end > rows {
            return Err(TensorError::IndexOutOfBounds {
                index: vec![start, end],
                shape: self.shape.clone(),
            });
        }
        let row_len: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        Tensor::from_vec(shape, self.data[start * row_len..end * row_len].to_vec())
    }

    // ---------------------------------------------------------------------
    // Elementwise arithmetic (fallible, shape-checked)
    // ---------------------------------------------------------------------

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op,
            });
        }
        Ok(())
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, "add", |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, "sub", |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, "mul", |a, b| a * b)
    }

    /// Elementwise quotient. Division by zero follows IEEE-754 (`inf`/`nan`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn div(&self, other: &Tensor) -> Result<Self> {
        self.zip_map(other, "div", |a, b| a / b)
    }

    /// Applies `f` elementwise to a pair of same-shape tensors.
    ///
    /// Runs on the [`rt_par`] pool; elementwise results are bitwise
    /// identical to the serial loop for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_map(
        &self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Result<Self> {
        self.check_same_shape(other, op)?;
        let mut data = vec![0.0f32; self.data.len()];
        let (lhs, rhs) = (&self.data, &other.data);
        rt_par::par_chunks_mut(&mut data, ELEM_GRAIN, |i, dst| {
            let start = i * ELEM_GRAIN;
            for (k, d) in dst.iter_mut().enumerate() {
                *d = f(lhs[start + k], rhs[start + k]);
            }
        });
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Applies `f(self[i], other[i])` in place on `self`.
    ///
    /// Runs on the [`rt_par`] pool; elementwise results are bitwise
    /// identical to the serial loop for every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn zip_apply(
        &mut self,
        other: &Tensor,
        op: &'static str,
        f: impl Fn(&mut f32, f32) + Sync,
    ) -> Result<()> {
        self.check_same_shape(other, op)?;
        let rhs = &other.data;
        rt_par::par_chunks_mut(&mut self.data, ELEM_GRAIN, |i, dst| {
            let start = i * ELEM_GRAIN;
            for (k, a) in dst.iter_mut().enumerate() {
                f(a, rhs[start + k]);
            }
        });
        Ok(())
    }

    /// In-place elementwise sum: `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.zip_apply(other, "add_assign", |a, b| *a += b)
    }

    /// In-place elementwise difference: `self -= other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn sub_assign(&mut self, other: &Tensor) -> Result<()> {
        self.zip_apply(other, "sub_assign", |a, b| *a -= b)
    }

    /// In-place elementwise product: `self *= other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn mul_assign(&mut self, other: &Tensor) -> Result<()> {
        self.zip_apply(other, "mul_assign", |a, b| *a *= b)
    }

    /// In-place scaled accumulate: `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.zip_apply(other, "axpy", |a, b| *a += alpha * b)
    }

    // ---------------------------------------------------------------------
    // Scalar and unary operations
    // ---------------------------------------------------------------------

    /// Returns `self + s` elementwise.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|x| x + s)
    }

    /// Returns `self * s` elementwise.
    pub fn mul_scalar(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// In-place scale: `self *= s`.
    pub fn scale(&mut self, s: f32) {
        self.map_inplace(|x| x * s);
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// Applies `f` elementwise, producing a new tensor.
    ///
    /// Runs on the [`rt_par`] pool; elementwise results are bitwise
    /// identical to the serial loop for every thread count.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Self {
        let mut data = vec![0.0f32; self.data.len()];
        let src = &self.data;
        rt_par::par_chunks_mut(&mut data, ELEM_GRAIN, |i, dst| {
            let start = i * ELEM_GRAIN;
            for (k, d) in dst.iter_mut().enumerate() {
                *d = f(src[start + k]);
            }
        });
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Applies `f` elementwise in place.
    ///
    /// Runs on the [`rt_par`] pool; elementwise results are bitwise
    /// identical to the serial loop for every thread count.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        rt_par::par_chunks_mut(&mut self.data, ELEM_GRAIN, |_, dst| {
            for x in dst.iter_mut() {
                *x = f(*x);
            }
        });
    }

    /// Elementwise clamp into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Self {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Self {
        self.map(f32::abs)
    }

    /// Elementwise sign (`-1`, `0`, or `1`).
    pub fn signum(&self) -> Self {
        self.map(|x| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    // ---------------------------------------------------------------------
    // Row broadcasting (rank-2 convenience used by linear layers)
    // ---------------------------------------------------------------------

    /// Adds a length-`F` row vector to every row of a `[N, F]` tensor, in
    /// place. Used for bias addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 `self` and
    /// [`TensorError::ShapeMismatch`] if `row.len() != F`.
    pub fn add_row_inplace(&mut self, row: &Tensor) -> Result<()> {
        if self.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.ndim(),
                op: "add_row_inplace",
            });
        }
        let cols = self.shape[1];
        if row.len() != cols {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: row.shape.clone(),
                op: "add_row_inplace",
            });
        }
        for chunk in self.data.chunks_mut(cols) {
            for (a, &b) in chunk.iter_mut().zip(&row.data) {
                *a += b;
            }
        }
        Ok(())
    }

    // ---------------------------------------------------------------------
    // Norms and global statistics
    // ---------------------------------------------------------------------

    /// Reduces the buffer in fixed-size chunks on the [`rt_par`] pool,
    /// folding chunk partials in chunk order. Chunk boundaries depend only
    /// on the length, so the result is identical for every thread count;
    /// buffers of at most one chunk reduce in the plain serial float order.
    fn chunked_reduce(&self, per_elem: impl Fn(f32) -> f32 + Sync) -> f32 {
        if self.data.len() <= REDUCE_GRAIN {
            return self.data.iter().map(|&x| per_elem(x)).sum();
        }
        rt_par::par_chunks(&self.data, REDUCE_GRAIN, |_, chunk| {
            chunk.iter().map(|&x| per_elem(x)).sum::<f32>()
        })
        .into_iter()
        .sum()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.chunked_reduce(|x| x)
    }

    /// Arithmetic mean of all elements (`0.0` for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// L1 norm (sum of absolute values).
    pub fn l1_norm(&self) -> f32 {
        self.chunked_reduce(|x| x.abs())
    }

    /// L2 (Frobenius) norm.
    pub fn l2_norm(&self) -> f32 {
        self.chunked_reduce(|x| x * x).sqrt()
    }

    /// Maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty tensor.
    pub fn max(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| {
                Some(acc.map_or(x, |m| m.max(x)))
            })
            .ok_or(TensorError::EmptyTensor { op: "max" })
    }

    /// Minimum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty tensor.
    pub fn min(&self) -> Result<f32> {
        self.data
            .iter()
            .copied()
            .fold(None, |acc: Option<f32>, x| {
                Some(acc.map_or(x, |m| m.min(x)))
            })
            .ok_or(TensorError::EmptyTensor { op: "min" })
    }

    /// Number of elements equal to exactly `0.0`.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|&&x| x == 0.0).count()
    }

    /// Concatenates tensors along axis 0. All inputs must agree on every
    /// trailing dimension.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty input list and
    /// [`TensorError::ShapeMismatch`] if trailing dimensions disagree.
    ///
    /// # Example
    ///
    /// ```rust
    /// use rt_tensor::Tensor;
    ///
    /// # fn main() -> Result<(), rt_tensor::TensorError> {
    /// let a = Tensor::ones(&[1, 3]);
    /// let b = Tensor::zeros(&[2, 3]);
    /// let c = Tensor::concat_rows(&[&a, &b])?;
    /// assert_eq!(c.shape(), &[3, 3]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn concat_rows(parts: &[&Tensor]) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or(TensorError::EmptyTensor { op: "concat_rows" })?;
        let trailing = &first.shape()[1..];
        let mut rows = 0usize;
        for p in parts {
            if p.ndim() != first.ndim() || &p.shape()[1..] != trailing {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape().to_vec(),
                    rhs: p.shape().to_vec(),
                    op: "concat_rows",
                });
            }
            rows += p.shape()[0];
        }
        let mut data = Vec::with_capacity(rows * trailing.iter().product::<usize>());
        for p in parts {
            data.extend_from_slice(p.data());
        }
        let mut shape = first.shape().to_vec();
        shape[0] = rows;
        Tensor::from_vec(shape, data)
    }

    /// Stacks equal-shape tensors along a new leading axis: `k` tensors of
    /// shape `S` become one tensor of shape `[k, S...]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::EmptyTensor`] for an empty input list and
    /// [`TensorError::ShapeMismatch`] if any shape differs from the first.
    pub fn stack(parts: &[&Tensor]) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or(TensorError::EmptyTensor { op: "stack" })?;
        let mut data = Vec::with_capacity(parts.len() * first.len());
        for p in parts {
            if p.shape() != first.shape() {
                return Err(TensorError::ShapeMismatch {
                    lhs: first.shape().to_vec(),
                    rhs: p.shape().to_vec(),
                    op: "stack",
                });
            }
            data.extend_from_slice(p.data());
        }
        let mut shape = vec![parts.len()];
        shape.extend_from_slice(first.shape());
        Tensor::from_vec(shape, data)
    }

    /// Whether every element is finite (no NaN/inf). Useful as a training
    /// sanity check.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

// Operator overloads are provided for ergonomic expression code in examples
// and tests. They panic on shape mismatch (documented), mirroring `ndarray`.
impl std::ops::Add for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Tensor::add`] for a fallible call.
    fn add(self, rhs: &Tensor) -> Tensor {
        Tensor::add(self, rhs).expect("tensor + tensor: shapes must match")
    }
}

impl std::ops::Sub for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Tensor::sub`] for a fallible call.
    fn sub(self, rhs: &Tensor) -> Tensor {
        Tensor::sub(self, rhs).expect("tensor - tensor: shapes must match")
    }
}

impl std::ops::Mul for &Tensor {
    type Output = Tensor;

    /// # Panics
    ///
    /// Panics if the shapes differ; use [`Tensor::mul`] for a fallible call.
    fn mul(self, rhs: &Tensor) -> Tensor {
        Tensor::mul(self, rhs).expect("tensor * tensor: shapes must match")
    }
}

impl std::ops::Neg for &Tensor {
    type Output = Tensor;

    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

impl Default for Tensor {
    /// An empty tensor of shape `[0]`.
    fn default() -> Self {
        Tensor {
            shape: vec![0],
            data: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
        let err = Tensor::from_vec(vec![2, 2], vec![1.0; 3]).unwrap_err();
        assert!(matches!(err, TensorError::LengthMismatch { .. }));
    }

    #[test]
    fn offset_is_row_major() {
        let t = Tensor::from_fn(&[2, 3, 4], |i| i as f32);
        assert_eq!(t.at(&[0, 0, 0]).unwrap(), 0.0);
        assert_eq!(t.at(&[0, 0, 3]).unwrap(), 3.0);
        assert_eq!(t.at(&[0, 1, 0]).unwrap(), 4.0);
        assert_eq!(t.at(&[1, 0, 0]).unwrap(), 12.0);
        assert_eq!(t.at(&[1, 2, 3]).unwrap(), 23.0);
    }

    #[test]
    fn at_rejects_bad_indices() {
        let t = Tensor::zeros(&[2, 2]);
        assert!(t.at(&[2, 0]).is_err());
        assert!(t.at(&[0]).is_err());
        assert!(t.at(&[0, 0, 0]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor::from_vec(vec![3], vec![4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.div(&a).unwrap().data(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let err = a.add(&b).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { op: "add", .. }));
    }

    #[test]
    fn in_place_ops() {
        let mut a = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![10.0, 20.0]).unwrap();
        a.add_assign(&b).unwrap();
        assert_eq!(a.data(), &[11.0, 22.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[16.0, 32.0]);
        a.scale(0.25);
        assert_eq!(a.data(), &[4.0, 8.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_fn(&[2, 6], |i| i as f32);
        let r = t.reshape(&[3, 4]).unwrap();
        assert_eq!(r.shape(), &[3, 4]);
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[5, 5]).is_err());
    }

    #[test]
    fn slice_rows_extracts_contiguous_rows() {
        let t = Tensor::from_fn(&[4, 3], |i| i as f32);
        let s = t.slice_rows(1, 3).unwrap();
        assert_eq!(s.shape(), &[2, 3]);
        assert_eq!(s.data(), &[3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert!(t.slice_rows(3, 5).is_err());
        assert!(t.slice_rows(2, 1).is_err());
    }

    #[test]
    fn slice_rows_works_on_rank4() {
        let t = Tensor::from_fn(&[3, 2, 2, 2], |i| i as f32);
        let s = t.slice_rows(2, 3).unwrap();
        assert_eq!(s.shape(), &[1, 2, 2, 2]);
        assert_eq!(s.data()[0], 16.0);
    }

    #[test]
    fn add_row_broadcasts_bias() {
        let mut t = Tensor::zeros(&[2, 3]);
        let bias = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        t.add_row_inplace(&bias).unwrap();
        assert_eq!(t.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn norms_and_stats() {
        let t = Tensor::from_vec(vec![4], vec![-3.0, 0.0, 4.0, 0.0]).unwrap();
        assert_eq!(t.l1_norm(), 7.0);
        assert_eq!(t.l2_norm(), 5.0);
        assert_eq!(t.max().unwrap(), 4.0);
        assert_eq!(t.min().unwrap(), -3.0);
        assert_eq!(t.count_zeros(), 2);
        assert!(t.all_finite());
    }

    #[test]
    fn empty_tensor_max_errors() {
        let t = Tensor::zeros(&[0]);
        assert!(matches!(t.max(), Err(TensorError::EmptyTensor { .. })));
    }

    #[test]
    fn nan_detection() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.all_finite());
        t.data_mut()[0] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn operator_overloads() {
        let a = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(vec![2], vec![3.0, 4.0]).unwrap();
        assert_eq!((&a + &b).data(), &[4.0, 6.0]);
        assert_eq!((&a - &b).data(), &[-2.0, -2.0]);
        assert_eq!((&a * &b).data(), &[3.0, 8.0]);
        assert_eq!((-&a).data(), &[-1.0, -2.0]);
    }

    #[test]
    fn clamp_abs_signum() {
        let t = Tensor::from_vec(vec![3], vec![-2.0, 0.0, 5.0]).unwrap();
        assert_eq!(t.clamp(-1.0, 1.0).data(), &[-1.0, 0.0, 1.0]);
        assert_eq!(t.abs().data(), &[2.0, 0.0, 5.0]);
        assert_eq!(t.signum().data(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn concat_rows_joins_and_validates() {
        let a = Tensor::from_fn(&[1, 3], |i| i as f32);
        let b = Tensor::from_fn(&[2, 3], |i| 10.0 + i as f32);
        let c = Tensor::concat_rows(&[&a, &b]).unwrap();
        assert_eq!(c.shape(), &[3, 3]);
        assert_eq!(c.data()[0..3], [0.0, 1.0, 2.0]);
        assert_eq!(c.data()[3], 10.0);
        // Mismatched trailing dims and empty lists are rejected.
        let bad = Tensor::zeros(&[1, 4]);
        assert!(Tensor::concat_rows(&[&a, &bad]).is_err());
        assert!(Tensor::concat_rows(&[]).is_err());
    }

    #[test]
    fn stack_adds_leading_axis() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::zeros(&[2, 2]);
        let s = Tensor::stack(&[&a, &b]).unwrap();
        assert_eq!(s.shape(), &[2, 2, 2]);
        assert_eq!(s.at(&[0, 0, 0]).unwrap(), 1.0);
        assert_eq!(s.at(&[1, 1, 1]).unwrap(), 0.0);
        assert!(Tensor::stack(&[&a, &Tensor::zeros(&[3])]).is_err());
    }

    #[test]
    fn serde_round_trip_and_validation() {
        let t = Tensor::from_fn(&[2, 3], |i| i as f32);
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);

        // A corrupted payload whose buffer disagrees with the shape must be
        // rejected at deserialization time.
        let bad = r#"{"shape":[2,3],"data":[1.0,2.0]}"#;
        assert!(serde_json::from_str::<Tensor>(bad).is_err());
    }

    #[test]
    fn default_is_empty() {
        let t = Tensor::default();
        assert!(t.is_empty());
        assert_eq!(t.shape(), &[0]);
    }
}
