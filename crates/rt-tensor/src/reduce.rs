//! Reductions over rows, columns, and NCHW channels.

use crate::{Result, Tensor, TensorError};

fn as_matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
            op,
        });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// Sums each row of a `[N, F]` tensor, producing `[N]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-2 input.
pub fn row_sums(t: &Tensor) -> Result<Tensor> {
    let (n, f) = as_matrix(t, "row_sums")?;
    let data = t.data();
    let out: Vec<f32> = (0..n)
        .map(|i| data[i * f..(i + 1) * f].iter().sum())
        .collect();
    Tensor::from_vec(vec![n], out)
}

/// Sums each column of a `[N, F]` tensor, producing `[F]`. This is the bias
/// gradient of a linear layer.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-2 input.
pub fn col_sums(t: &Tensor) -> Result<Tensor> {
    let (n, f) = as_matrix(t, "col_sums")?;
    let mut out = vec![0.0f32; f];
    let data = t.data();
    for i in 0..n {
        for (o, &v) in out.iter_mut().zip(&data[i * f..(i + 1) * f]) {
            *o += v;
        }
    }
    Tensor::from_vec(vec![f], out)
}

/// Index of the maximum element of each row of a `[N, F]` tensor.
///
/// Ties resolve to the first maximal index.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-2 input and
/// [`TensorError::EmptyTensor`] for zero columns.
pub fn argmax_rows(t: &Tensor) -> Result<Vec<usize>> {
    let (n, f) = as_matrix(t, "argmax_rows")?;
    if f == 0 {
        return Err(TensorError::EmptyTensor { op: "argmax_rows" });
    }
    let data = t.data();
    Ok((0..n)
        .map(|i| {
            let row = &data[i * f..(i + 1) * f];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            best
        })
        .collect())
}

/// Maximum element of each row of a `[N, F]` tensor.
///
/// # Errors
///
/// Same conditions as [`argmax_rows`].
pub fn max_rows(t: &Tensor) -> Result<Tensor> {
    let (n, f) = as_matrix(t, "max_rows")?;
    if f == 0 {
        return Err(TensorError::EmptyTensor { op: "max_rows" });
    }
    let data = t.data();
    let out: Vec<f32> = (0..n)
        .map(|i| {
            data[i * f..(i + 1) * f]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max)
        })
        .collect();
    Tensor::from_vec(vec![n], out)
}

fn check_nchw(t: &Tensor, op: &'static str) -> Result<[usize; 4]> {
    if t.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.ndim(),
            op,
        });
    }
    let s = t.shape();
    Ok([s[0], s[1], s[2], s[3]])
}

/// Per-channel sum over batch and spatial axes of an NCHW tensor: `[C]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input.
pub fn channel_sums(t: &Tensor) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(t, "channel_sums")?;
    let plane = h * w;
    let data = t.data();
    let mut out = vec![0.0f32; c];
    for b in 0..n {
        for (ch, o) in out.iter_mut().enumerate() {
            let start = (b * c + ch) * plane;
            *o += data[start..start + plane].iter().sum::<f32>();
        }
    }
    Tensor::from_vec(vec![c], out)
}

/// Per-channel sum of squares over batch and spatial axes: `[C]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input.
pub fn channel_sq_sums(t: &Tensor) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(t, "channel_sq_sums")?;
    let plane = h * w;
    let data = t.data();
    let mut out = vec![0.0f32; c];
    for b in 0..n {
        for (ch, o) in out.iter_mut().enumerate() {
            let start = (b * c + ch) * plane;
            *o += data[start..start + plane]
                .iter()
                .map(|&x| x * x)
                .sum::<f32>();
        }
    }
    Tensor::from_vec(vec![c], out)
}

/// Per-channel sum of `g ⊙ x̂` where both operands are NCHW — the BatchNorm
/// scale-gradient reduction.
///
/// # Errors
///
/// Returns a rank or shape error if the operands are not identically-shaped
/// NCHW tensors.
pub fn channel_dot(g: &Tensor, x: &Tensor) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(g, "channel_dot")?;
    if g.shape() != x.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: g.shape().to_vec(),
            rhs: x.shape().to_vec(),
            op: "channel_dot",
        });
    }
    let plane = h * w;
    let gd = g.data();
    let xd = x.data();
    let mut out = vec![0.0f32; c];
    for b in 0..n {
        for (ch, o) in out.iter_mut().enumerate() {
            let start = (b * c + ch) * plane;
            *o += gd[start..start + plane]
                .iter()
                .zip(&xd[start..start + plane])
                .map(|(&a, &b)| a * b)
                .sum::<f32>();
        }
    }
    Tensor::from_vec(vec![c], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_and_col_sums() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(row_sums(&t).unwrap().data(), &[6.0, 15.0]);
        assert_eq!(col_sums(&t).unwrap().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 3.0, 3.0, -1.0, -5.0, -1.0]).unwrap();
        assert_eq!(argmax_rows(&t).unwrap(), vec![1, 0]);
    }

    #[test]
    fn max_rows_matches_argmax() {
        let t = Tensor::from_vec(vec![2, 2], vec![0.5, -2.0, 7.0, 7.5]).unwrap();
        assert_eq!(max_rows(&t).unwrap().data(), &[0.5, 7.5]);
    }

    #[test]
    fn rank_checks() {
        let t = Tensor::zeros(&[4]);
        assert!(row_sums(&t).is_err());
        assert!(argmax_rows(&t).is_err());
        assert!(channel_sums(&t).is_err());
    }

    #[test]
    fn channel_reductions() {
        // [N=2, C=2, H=1, W=2]
        let t = Tensor::from_vec(
            vec![2, 2, 1, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        )
        .unwrap();
        let sums = channel_sums(&t).unwrap();
        assert_eq!(sums.data(), &[1.0 + 2.0 + 5.0 + 6.0, 3.0 + 4.0 + 7.0 + 8.0]);
        let sq = channel_sq_sums(&t).unwrap();
        assert_eq!(
            sq.data(),
            &[1.0 + 4.0 + 25.0 + 36.0, 9.0 + 16.0 + 49.0 + 64.0]
        );
    }

    #[test]
    fn channel_dot_matches_manual() {
        let g = Tensor::from_vec(vec![1, 2, 1, 2], vec![1.0, 1.0, 2.0, 2.0]).unwrap();
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(channel_dot(&g, &x).unwrap().data(), &[7.0, 22.0]);
        let bad = Tensor::zeros(&[1, 2, 2, 2]);
        assert!(channel_dot(&g, &bad).is_err());
    }
}
