//! Reductions over rows, columns, and NCHW channels.
//!
//! Every reduction here fans out across *independent output elements*
//! (rows, columns, or channels) on the [`rt_par`] pool. The per-output
//! accumulation order is exactly the serial order, and chunk boundaries are
//! a pure function of the problem size, so results are bit-identical for
//! any `RT_THREADS` setting.

use crate::{Result, Tensor, TensorError};

/// Target number of scalar reads per parallel task. Chunk sizes are derived
/// from this and the problem shape only — never from the thread count — so
/// the fan-out (and thus the result) is reproducible across pool sizes.
const REDUCE_GRAIN: usize = 8192;

/// Number of output elements per task when each output consumes
/// `per_output` input scalars. Pure in the problem size.
fn outputs_per_chunk(count: usize, per_output: usize) -> usize {
    (REDUCE_GRAIN / per_output.max(1)).clamp(1, count.max(1))
}

fn as_matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: t.ndim(),
            op,
        });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// Sums each row of a `[N, F]` tensor, producing `[N]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-2 input.
pub fn row_sums(t: &Tensor) -> Result<Tensor> {
    let (n, f) = as_matrix(t, "row_sums")?;
    let data = t.data();
    let mut out = vec![0.0f32; n];
    let rows = outputs_per_chunk(n, f);
    rt_par::par_chunks_mut(&mut out, rows, |chunk_idx, dst| {
        let base = chunk_idx * rows;
        for (k, o) in dst.iter_mut().enumerate() {
            let i = base + k;
            *o = data[i * f..(i + 1) * f].iter().sum();
        }
    });
    Tensor::from_vec(vec![n], out)
}

/// Sums each column of a `[N, F]` tensor, producing `[F]`. This is the bias
/// gradient of a linear layer.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-2 input.
pub fn col_sums(t: &Tensor) -> Result<Tensor> {
    let (n, f) = as_matrix(t, "col_sums")?;
    let mut out = vec![0.0f32; f];
    let data = t.data();
    // Parallel over column ranges; each column still accumulates rows in
    // order 0..n, matching the serial float order exactly.
    let cols = outputs_per_chunk(f, n);
    rt_par::par_chunks_mut(&mut out, cols, |chunk_idx, dst| {
        let base = chunk_idx * cols;
        for i in 0..n {
            let row = &data[i * f + base..i * f + base + dst.len()];
            for (o, &v) in dst.iter_mut().zip(row) {
                *o += v;
            }
        }
    });
    Tensor::from_vec(vec![f], out)
}

/// Index of the maximum element of each row of a `[N, F]` tensor.
///
/// Ties resolve to the first maximal index.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-2 input and
/// [`TensorError::EmptyTensor`] for zero columns.
pub fn argmax_rows(t: &Tensor) -> Result<Vec<usize>> {
    let (n, f) = as_matrix(t, "argmax_rows")?;
    if f == 0 {
        return Err(TensorError::EmptyTensor { op: "argmax_rows" });
    }
    let data = t.data();
    let mut out = vec![0usize; n];
    let rows = outputs_per_chunk(n, f);
    rt_par::par_chunks_mut(&mut out, rows, |chunk_idx, dst| {
        let base = chunk_idx * rows;
        for (k, o) in dst.iter_mut().enumerate() {
            let row = &data[(base + k) * f..(base + k + 1) * f];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            *o = best;
        }
    });
    Ok(out)
}

/// Maximum element of each row of a `[N, F]` tensor.
///
/// # Errors
///
/// Same conditions as [`argmax_rows`].
pub fn max_rows(t: &Tensor) -> Result<Tensor> {
    let (n, f) = as_matrix(t, "max_rows")?;
    if f == 0 {
        return Err(TensorError::EmptyTensor { op: "max_rows" });
    }
    let data = t.data();
    let mut out = vec![0.0f32; n];
    let rows = outputs_per_chunk(n, f);
    rt_par::par_chunks_mut(&mut out, rows, |chunk_idx, dst| {
        let base = chunk_idx * rows;
        for (k, o) in dst.iter_mut().enumerate() {
            *o = data[(base + k) * f..(base + k + 1) * f]
                .iter()
                .copied()
                .fold(f32::NEG_INFINITY, f32::max);
        }
    });
    Tensor::from_vec(vec![n], out)
}

fn check_nchw(t: &Tensor, op: &'static str) -> Result<[usize; 4]> {
    if t.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.ndim(),
            op,
        });
    }
    let s = t.shape();
    Ok([s[0], s[1], s[2], s[3]])
}

/// Per-channel sum over batch and spatial axes of an NCHW tensor: `[C]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input.
pub fn channel_sums(t: &Tensor) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(t, "channel_sums")?;
    let plane = h * w;
    let data = t.data();
    let mut out = vec![0.0f32; c];
    // Parallel over channel ranges; each channel's batch loop runs b=0..n in
    // order, so per-channel accumulation matches the serial float order.
    let chans = outputs_per_chunk(c, n * plane);
    rt_par::par_chunks_mut(&mut out, chans, |chunk_idx, dst| {
        let base = chunk_idx * chans;
        for b in 0..n {
            for (k, o) in dst.iter_mut().enumerate() {
                let start = (b * c + base + k) * plane;
                *o += data[start..start + plane].iter().sum::<f32>();
            }
        }
    });
    Tensor::from_vec(vec![c], out)
}

/// Per-channel sum of squares over batch and spatial axes: `[C]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-4 input.
pub fn channel_sq_sums(t: &Tensor) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(t, "channel_sq_sums")?;
    let plane = h * w;
    let data = t.data();
    let mut out = vec![0.0f32; c];
    let chans = outputs_per_chunk(c, n * plane);
    rt_par::par_chunks_mut(&mut out, chans, |chunk_idx, dst| {
        let base = chunk_idx * chans;
        for b in 0..n {
            for (k, o) in dst.iter_mut().enumerate() {
                let start = (b * c + base + k) * plane;
                *o += data[start..start + plane]
                    .iter()
                    .map(|&x| x * x)
                    .sum::<f32>();
            }
        }
    });
    Tensor::from_vec(vec![c], out)
}

/// Per-channel sum of `g ⊙ x̂` where both operands are NCHW — the BatchNorm
/// scale-gradient reduction.
///
/// # Errors
///
/// Returns a rank or shape error if the operands are not identically-shaped
/// NCHW tensors.
pub fn channel_dot(g: &Tensor, x: &Tensor) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(g, "channel_dot")?;
    if g.shape() != x.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: g.shape().to_vec(),
            rhs: x.shape().to_vec(),
            op: "channel_dot",
        });
    }
    let plane = h * w;
    let gd = g.data();
    let xd = x.data();
    let mut out = vec![0.0f32; c];
    let chans = outputs_per_chunk(c, n * plane);
    rt_par::par_chunks_mut(&mut out, chans, |chunk_idx, dst| {
        let base = chunk_idx * chans;
        for b in 0..n {
            for (k, o) in dst.iter_mut().enumerate() {
                let start = (b * c + base + k) * plane;
                *o += gd[start..start + plane]
                    .iter()
                    .zip(&xd[start..start + plane])
                    .map(|(&a, &b)| a * b)
                    .sum::<f32>();
            }
        }
    });
    Tensor::from_vec(vec![c], out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_and_col_sums() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(row_sums(&t).unwrap().data(), &[6.0, 15.0]);
        assert_eq!(col_sums(&t).unwrap().data(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn argmax_prefers_first_on_tie() {
        let t = Tensor::from_vec(vec![2, 3], vec![1.0, 3.0, 3.0, -1.0, -5.0, -1.0]).unwrap();
        assert_eq!(argmax_rows(&t).unwrap(), vec![1, 0]);
    }

    #[test]
    fn max_rows_matches_argmax() {
        let t = Tensor::from_vec(vec![2, 2], vec![0.5, -2.0, 7.0, 7.5]).unwrap();
        assert_eq!(max_rows(&t).unwrap().data(), &[0.5, 7.5]);
    }

    #[test]
    fn rank_checks() {
        let t = Tensor::zeros(&[4]);
        assert!(row_sums(&t).is_err());
        assert!(argmax_rows(&t).is_err());
        assert!(channel_sums(&t).is_err());
    }

    #[test]
    fn channel_reductions() {
        // [N=2, C=2, H=1, W=2]
        let t = Tensor::from_vec(
            vec![2, 2, 1, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        )
        .unwrap();
        let sums = channel_sums(&t).unwrap();
        assert_eq!(sums.data(), &[1.0 + 2.0 + 5.0 + 6.0, 3.0 + 4.0 + 7.0 + 8.0]);
        let sq = channel_sq_sums(&t).unwrap();
        assert_eq!(
            sq.data(),
            &[1.0 + 4.0 + 25.0 + 36.0, 9.0 + 16.0 + 49.0 + 64.0]
        );
    }

    #[test]
    fn channel_dot_matches_manual() {
        let g = Tensor::from_vec(vec![1, 2, 1, 2], vec![1.0, 1.0, 2.0, 2.0]).unwrap();
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(channel_dot(&g, &x).unwrap().data(), &[7.0, 22.0]);
        let bad = Tensor::zeros(&[1, 2, 2, 2]);
        assert!(channel_dot(&g, &bad).is_err());
    }
}
