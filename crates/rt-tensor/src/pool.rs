//! Process-wide, thread-sharded `f32` buffer pool.
//!
//! Every hot-path scratch allocation in the execution engine — gemm
//! panel packing (`kern`), im2col/col2im staging (`conv`), per-sample
//! layer scratch (rt-nn) — leases its buffer from this pool instead of
//! calling `Vec::with_capacity`. After a warm-up step, a steady-state
//! train/infer iteration touches the allocator **zero** times: every
//! `take` is served from a recycled buffer of the exact same length
//! (enforced by the `pool_steady_state` test in rt-nn and the `ci.sh`
//! allocation lint).
//!
//! # Design
//!
//! * **Thread-sharded.** Each thread owns a private free-list shard
//!   (`thread_local!`), so `take`/`put` are lock-free and never contend.
//!   Worker threads in the rt-par pool warm their own shards; a buffer
//!   is recycled on whichever thread releases it.
//! * **Exact-length keying.** A buffer is only reused for a request of
//!   its exact length. The execution engine's shapes are stable across
//!   steps, so exact keying hits ~100% in steady state while keeping
//!   the lease semantics trivial (no slack capacity to reason about).
//! * **Determinism.** [`take`] returns a buffer with *unspecified*
//!   contents (callers overwrite every element — e.g. gemm panel
//!   packing writes every slot including padding); [`take_zeroed`]
//!   zero-fills recycled buffers so reuse is indistinguishable from a
//!   fresh allocation. Pool state therefore never influences numerics,
//!   and results stay byte-identical with the pool disabled
//!   (`RT_POOL=0`).
//! * **Bounded.** Per-length free lists keep at most [`MAX_PER_LEN`]
//!   buffers and each shard caps its cached bytes (default 64 MiB,
//!   `RT_POOL_MAX_MB` overrides); beyond that, `put` simply drops.
//!
//! # Env knobs
//!
//! | var | default | effect |
//! |-----|---------|--------|
//! | `RT_POOL` | `1` | `0`/`false`/`off` disables recycling (every take allocates, every put drops) |
//! | `RT_POOL_MAX_MB` | `64` | per-thread cap on cached (idle) pool bytes |
//!
//! # Telemetry
//!
//! The pool counts hits/misses/leased bytes in process-wide atomics
//! (readable via [`stats`], reset via [`reset_stats`]) and exposes a
//! fn-pointer [`PoolObserver`] mirroring `rt_par::set_observer`: rt-obs
//! sits *above* rt-tensor in the crate graph, so the telemetry layer
//! injects plain fn pointers (see `rt_obs::install_pool_observer`) that
//! feed the `pool.hits` / `pool.misses` / `pool.bytes_leased` counters
//! and the `mem.peak_pool_bytes` gauge.

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Maximum recycled buffers cached per exact length, per thread shard.
pub const MAX_PER_LEN: usize = 8;

/// Default per-thread cap on cached pool bytes (overridable via
/// `RT_POOL_MAX_MB`).
pub const DEFAULT_MAX_SHARD_BYTES: usize = 64 << 20;

// ---------------------------------------------------------------------------
// Observer (telemetry injection point)
// ---------------------------------------------------------------------------

/// Telemetry hooks, injected once by the observability layer.
///
/// Plain fn pointers (no capture, no allocation) so firing a hook is a
/// direct call; rt-tensor cannot depend on rt-obs, so the wiring runs in
/// the opposite direction (`rt_obs::install_pool_observer`).
#[derive(Clone, Copy)]
pub struct PoolObserver {
    /// A lease was served from a recycled buffer (`bytes` leased).
    pub on_hit: fn(bytes: u64),
    /// A lease required a fresh allocation (`bytes` allocated).
    pub on_miss: fn(bytes: u64),
    /// Outstanding leased bytes reached a new process-wide peak.
    pub on_peak: fn(bytes: u64),
}

static OBSERVER: OnceLock<PoolObserver> = OnceLock::new();

/// Installs the process-wide pool observer. First call wins; returns
/// whether this call installed it.
pub fn set_observer(obs: PoolObserver) -> bool {
    OBSERVER.set(obs).is_ok()
}

#[inline]
fn observer() -> Option<&'static PoolObserver> {
    OBSERVER.get()
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static BYTES_LEASED: AtomicU64 = AtomicU64::new(0);
static CUR_LEASED: AtomicU64 = AtomicU64::new(0);
static PEAK_LEASED: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide pool counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Leases served from a recycled buffer.
    pub hits: u64,
    /// Leases that had to allocate.
    pub misses: u64,
    /// Cumulative bytes leased (hits + misses).
    pub bytes_leased: u64,
    /// High-water mark of simultaneously leased bytes.
    pub peak_bytes: u64,
}

/// Reads the process-wide counters (relaxed; exact once quiescent).
pub fn stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        bytes_leased: BYTES_LEASED.load(Ordering::Relaxed),
        peak_bytes: PEAK_LEASED.load(Ordering::Relaxed),
    }
}

/// Zeroes the counters (cached buffers stay warm). Test/bench helper:
/// warm up, reset, run a step, then assert `stats().misses == 0`.
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    BYTES_LEASED.store(0, Ordering::Relaxed);
    CUR_LEASED.store(0, Ordering::Relaxed);
    PEAK_LEASED.store(0, Ordering::Relaxed);
}

/// Per-thread hit/miss counters — race-free by construction, so tests
/// can assert exact values even while unrelated test threads use the
/// pool concurrently (the process-wide [`stats`] would race).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ThreadPoolStats {
    /// Leases served from this thread's shard.
    pub hits: u64,
    /// Leases on this thread that had to allocate.
    pub misses: u64,
}

/// Reads the calling thread's hit/miss counters.
pub fn thread_stats() -> ThreadPoolStats {
    SHARD.with(|s| {
        let shard = s.borrow();
        ThreadPoolStats {
            hits: shard.t_hits,
            misses: shard.t_misses,
        }
    })
}

/// Zeroes the calling thread's hit/miss counters.
pub fn reset_thread_stats() {
    SHARD.with(|s| {
        let mut shard = s.borrow_mut();
        shard.t_hits = 0;
        shard.t_misses = 0;
    });
}

#[inline]
fn note_take(len: usize, hit: bool) {
    let bytes = (len * std::mem::size_of::<f32>()) as u64;
    if hit {
        HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        MISSES.fetch_add(1, Ordering::Relaxed);
    }
    BYTES_LEASED.fetch_add(bytes, Ordering::Relaxed);
    let cur = CUR_LEASED.fetch_add(bytes, Ordering::Relaxed) + bytes;
    let peak = PEAK_LEASED.fetch_max(cur, Ordering::Relaxed);
    if let Some(obs) = observer() {
        if hit {
            (obs.on_hit)(bytes);
        } else {
            (obs.on_miss)(bytes);
        }
        if cur > peak {
            (obs.on_peak)(cur);
        }
    }
}

#[inline]
fn note_put(len: usize) {
    let bytes = (len * std::mem::size_of::<f32>()) as u64;
    // Saturating: a buffer `put` without a matching `take` (allowed —
    // callers may donate) must not underflow the outstanding gauge.
    let _ = CUR_LEASED.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
        Some(cur.saturating_sub(bytes))
    });
}

// ---------------------------------------------------------------------------
// Env gates
// ---------------------------------------------------------------------------

/// 0 = unresolved, 1 = enabled, 2 = disabled.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether recycling is on (`RT_POOL`, default on). With the pool off,
/// `take` always allocates and `put` drops — the allocation-free hot
/// path degrades to per-call allocation with identical numerics.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = match std::env::var("RT_POOL") {
                Ok(v) => {
                    let v = v.trim().to_ascii_lowercase();
                    !(v == "0" || v == "false" || v == "off")
                }
                Err(_) => true,
            };
            ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Test hook: force the pool on/off, overriding `RT_POOL`.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

static MAX_SHARD_BYTES: OnceLock<usize> = OnceLock::new();

fn max_shard_bytes() -> usize {
    *MAX_SHARD_BYTES.get_or_init(|| {
        std::env::var("RT_POOL_MAX_MB")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|mb| mb << 20)
            .unwrap_or(DEFAULT_MAX_SHARD_BYTES)
    })
}

// ---------------------------------------------------------------------------
// Shards
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Shard {
    by_len: HashMap<usize, Vec<Vec<f32>>>,
    cached_bytes: usize,
    t_hits: u64,
    t_misses: u64,
}

thread_local! {
    static SHARD: RefCell<Shard> = RefCell::new(Shard::default());
}

/// Leases a buffer of exactly `len` elements with **unspecified**
/// contents (recycled buffers keep their old bytes; fresh allocations
/// are zeroed). Callers must overwrite every element they read.
pub fn take(len: usize) -> Vec<f32> {
    take_inner(len, false)
}

/// Leases a buffer of exactly `len` elements, zero-filled — recycled or
/// fresh, indistinguishable from `vec![0.0; len]`.
pub fn take_zeroed(len: usize) -> Vec<f32> {
    take_inner(len, true)
}

fn take_inner(len: usize, zero: bool) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    if enabled() {
        let recycled = SHARD.with(|s| {
            let mut shard = s.borrow_mut();
            let buf = shard.by_len.get_mut(&len).and_then(Vec::pop);
            if let Some(ref b) = buf {
                shard.cached_bytes = shard
                    .cached_bytes
                    .saturating_sub(b.len() * std::mem::size_of::<f32>());
                shard.t_hits += 1;
            }
            buf
        });
        if let Some(mut buf) = recycled {
            debug_assert_eq!(buf.len(), len);
            if zero {
                buf.fill(0.0);
            }
            note_take(len, true);
            return buf;
        }
    }
    SHARD.with(|s| s.borrow_mut().t_misses += 1);
    note_take(len, false);
    vec![0.0; len]
}

/// Returns a buffer to the calling thread's shard for reuse. Buffers
/// over the shard caps (or with the pool disabled) are dropped.
pub fn put(buf: Vec<f32>) {
    let len = buf.len();
    if len == 0 {
        return;
    }
    note_put(len);
    if !enabled() {
        return;
    }
    let bytes = len * std::mem::size_of::<f32>();
    SHARD.with(|s| {
        let mut shard = s.borrow_mut();
        if shard.cached_bytes + bytes > max_shard_bytes() {
            return; // drop: over the shard byte cap
        }
        let list = shard.by_len.entry(len).or_default();
        if list.len() >= MAX_PER_LEN {
            return; // drop: enough spares of this length already
        }
        list.push(buf);
        shard.cached_bytes += bytes;
    });
}

/// Drops every buffer cached by the *calling* thread's shard. Other
/// threads' shards are untouched (they drain when those threads exit).
pub fn clear_thread() {
    SHARD.with(|s| {
        let mut shard = s.borrow_mut();
        shard.by_len.clear();
        shard.cached_bytes = 0;
    });
}

// ---------------------------------------------------------------------------
// RAII lease
// ---------------------------------------------------------------------------

/// An RAII pool lease: derefs to `[f32]` and returns the buffer to the
/// pool on drop, so early returns and `?` propagation cannot leak a
/// buffer out of circulation.
pub struct Lease {
    buf: Option<Vec<f32>>,
}

impl Lease {
    /// Detaches the underlying `Vec` (it will not return to the pool on
    /// drop; hand it back manually with [`put`] if desired).
    pub fn into_vec(mut self) -> Vec<f32> {
        self.buf.take().unwrap_or_default()
    }
}

impl Deref for Lease {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.buf.as_deref().unwrap_or(&[])
    }
}

impl DerefMut for Lease {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.buf.as_deref_mut().unwrap_or(&mut [])
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            put(buf);
        }
    }
}

/// [`take`] wrapped in an RAII [`Lease`] (unspecified contents).
pub fn lease(len: usize) -> Lease {
    Lease {
        buf: Some(take(len)),
    }
}

/// [`take_zeroed`] wrapped in an RAII [`Lease`].
pub fn lease_zeroed(len: usize) -> Lease {
    Lease {
        buf: Some(take_zeroed(len)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that toggle the process-wide `set_enabled` gate:
    /// a disabled window observed by a concurrent test would turn its
    /// hits into misses.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn recycles_exact_lengths_and_zero_fills() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear_thread();
        let mut a = take(16);
        a.iter_mut().for_each(|x| *x = 7.0);
        put(a);
        // Dirty reuse: same length comes back with old bytes.
        let b = take(16);
        assert_eq!(b[0], 7.0);
        put(b);
        // Zeroed reuse: indistinguishable from fresh.
        let c = take_zeroed(16);
        assert!(c.iter().all(|&x| x == 0.0));
        put(c);
        // Different length never matches.
        let d = take(17);
        assert!(d.iter().all(|&x| x == 0.0));
        put(d);
        clear_thread();
    }

    #[test]
    fn steady_state_is_hit_only() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear_thread();
        for len in [64usize, 256, 1024] {
            put(take(len)); // warm
        }
        reset_thread_stats();
        for len in [64usize, 256, 1024] {
            put(take(len));
        }
        let s = thread_stats();
        assert_eq!(s.misses, 0, "warm pool must not allocate");
        assert_eq!(s.hits, 3);
        clear_thread();
    }

    #[test]
    fn disabled_pool_always_allocates() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        clear_thread();
        put(take(32));
        reset_thread_stats();
        let b = take(32);
        assert_eq!(thread_stats().misses, 1);
        put(b);
        set_enabled(true);
        clear_thread();
    }

    #[test]
    fn lease_returns_on_drop() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        clear_thread();
        {
            let mut l = lease_zeroed(48);
            l[0] = 1.0;
        }
        reset_thread_stats();
        let l = lease(48);
        assert_eq!(thread_stats().hits, 1);
        drop(l);
        clear_thread();
    }

    #[test]
    fn zero_len_is_free() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        reset_thread_stats();
        let b = take(0);
        assert!(b.is_empty());
        put(b);
        let s = thread_stats();
        assert_eq!(s.hits + s.misses, 0);
    }
}
