//! Weight initializers.
//!
//! Normal deviates are produced with an internal Box–Muller transform rather
//! than `rand_distr`, keeping the dependency set to the workspace-approved
//! crates.

use crate::Tensor;
use rand::Rng;

/// Draws one standard-normal deviate via Box–Muller.
fn standard_normal<R: Rng>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Tensor of i.i.d. normal deviates with the given mean and standard
/// deviation.
pub fn normal<R: Rng>(shape: &[usize], mean: f32, std: f32, rng: &mut R) -> Tensor {
    Tensor::from_fn(shape, |_| mean + std * standard_normal(rng))
}

/// Tensor of i.i.d. uniform deviates in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn uniform<R: Rng>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Tensor {
    assert!(lo <= hi, "uniform: lo must not exceed hi");
    Tensor::from_fn(shape, |_| lo + (hi - lo) * rng.gen::<f32>())
}

/// Kaiming (He) normal initialization for ReLU networks:
/// `std = sqrt(2 / fan_in)`.
///
/// `fan_in` for a conv weight `[O, C, k, k]` is `C·k·k`; for a linear weight
/// `[O, I]` it is `I`.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_normal<R: Rng>(shape: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    assert!(fan_in > 0, "kaiming_normal: fan_in must be positive");
    let std = (2.0 / fan_in as f32).sqrt();
    normal(shape, 0.0, std, rng)
}

/// Kaiming uniform initialization: `U(-b, b)` with `b = sqrt(6 / fan_in)`.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_uniform<R: Rng>(shape: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    assert!(fan_in > 0, "kaiming_uniform: fan_in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

/// Xavier/Glorot uniform initialization: `U(-b, b)` with
/// `b = sqrt(6 / (fan_in + fan_out))`. Used for the final classifier.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform<R: Rng>(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    assert!(
        fan_in + fan_out > 0,
        "xavier_uniform: fans must be positive"
    );
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(shape, -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = rng_from_seed(11);
        let t = normal(&[10_000], 1.0, 2.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = rng_from_seed(3);
        let t = uniform(&[1000], -0.25, 0.75, &mut rng);
        assert!(t.min().unwrap() >= -0.25);
        assert!(t.max().unwrap() < 0.75);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = rng_from_seed(5);
        let narrow = kaiming_normal(&[5000], 8, &mut rng);
        let wide = kaiming_normal(&[5000], 512, &mut rng);
        let std = |t: &Tensor| {
            let m = t.mean();
            t.map(|x| (x - m) * (x - m)).mean().sqrt()
        };
        let expected_narrow = (2.0f32 / 8.0).sqrt();
        let expected_wide = (2.0f32 / 512.0).sqrt();
        assert!((std(&narrow) - expected_narrow).abs() / expected_narrow < 0.1);
        assert!((std(&wide) - expected_wide).abs() / expected_wide < 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = kaiming_uniform(&[16], 4, &mut rng_from_seed(77));
        let b = kaiming_uniform(&[16], 4, &mut rng_from_seed(77));
        assert_eq!(a, b);
    }

    #[test]
    fn xavier_bound() {
        let mut rng = rng_from_seed(9);
        let t = xavier_uniform(&[2000], 10, 14, &mut rng);
        let bound = (6.0f32 / 24.0).sqrt();
        assert!(t.max().unwrap() < bound);
        assert!(t.min().unwrap() >= -bound);
    }

    #[test]
    fn all_finite_outputs() {
        let mut rng = rng_from_seed(1);
        assert!(normal(&[4096], 0.0, 1.0, &mut rng).all_finite());
    }
}
