//! Property-based tests for the tensor substrate: algebraic identities that
//! must hold for arbitrary shapes and data.

use proptest::prelude::*;
use rt_tensor::linalg::Gemm;
use rt_tensor::{conv, linalg, reduce, special, Tensor};

/// Overwrite-mode `op(A) × op(B)` through the unified gemm entry point.
fn mm(a: &Tensor, b: &Tensor, cfg: Gemm) -> Tensor {
    let m = if cfg.trans_a { a.shape()[1] } else { a.shape()[0] };
    let n = if cfg.trans_b { b.shape()[0] } else { b.shape()[1] };
    let mut out = Tensor::zeros(&[m, n]);
    linalg::gemm(a, b, cfg, &mut out).expect("gemm shapes agree");
    out
}

/// Strategy producing a tensor with the given shape and bounded finite data.
fn tensor_with_shape(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    prop::collection::vec(-10.0f32..10.0, n)
        .prop_map(move |data| Tensor::from_vec(shape.clone(), data).expect("consistent shape"))
}

/// Strategy for a small matrix with dims in 1..=6.
fn small_matrix() -> impl Strategy<Value = Tensor> {
    (1usize..=6, 1usize..=6).prop_flat_map(|(m, n)| tensor_with_shape(vec![m, n]))
}

proptest! {
    #[test]
    fn add_commutes(m in 1usize..=5, n in 1usize..=5, seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let a = Tensor::from_fn(&[m, n], |i| ((seed_a.wrapping_add(i as u64) % 1000) as f32) / 100.0 - 5.0);
        let b = Tensor::from_fn(&[m, n], |i| ((seed_b.wrapping_add(i as u64) % 1000) as f32) / 100.0 - 5.0);
        prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
    }

    #[test]
    fn sub_then_add_round_trips(pair in (1usize..=5, 1usize..=5).prop_flat_map(|(m, n)| {
        (tensor_with_shape(vec![m, n]), tensor_with_shape(vec![m, n]))
    })) {
        let (t, u) = pair;
        let diff = t.sub(&u).unwrap();
        let back = diff.add(&u).unwrap();
        for (x, y) in back.data().iter().zip(t.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn scale_matches_mul_scalar(t in small_matrix(), s in -4.0f32..4.0) {
        let mut a = t.clone();
        a.scale(s);
        prop_assert_eq!(a, t.mul_scalar(s));
    }

    #[test]
    fn reshape_preserves_sum(t in small_matrix()) {
        let n = t.len();
        let flat = t.reshape(&[n]).unwrap();
        prop_assert!((flat.sum() - t.sum()).abs() < 1e-3);
    }

    #[test]
    fn transpose_is_involutive(t in small_matrix()) {
        let tt = linalg::transpose(&linalg::transpose(&t).unwrap()).unwrap();
        prop_assert_eq!(tt, t);
    }

    #[test]
    fn matmul_distributes_over_add(
        m in 1usize..=4, k in 1usize..=4, n in 1usize..=4, seed in any::<u64>(),
    ) {
        let gen = |off: u64, shape: &[usize]| {
            Tensor::from_fn(shape, |i| {
                (((seed ^ off).wrapping_mul(6364136223846793005).wrapping_add((i as u64).wrapping_mul(1442695040888963407)) >> 33) % 200) as f32 / 50.0 - 2.0
            })
        };
        let a = gen(1, &[m, k]);
        let b = gen(2, &[k, n]);
        let c = gen(3, &[k, n]);
        let lhs = mm(&a, &b.add(&c).unwrap(), Gemm::new());
        let rhs = mm(&a, &b, Gemm::new()).add(&mm(&a, &c, Gemm::new())).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{} vs {}", x, y);
        }
    }

    #[test]
    fn matmul_transposed_variants_consistent(
        m in 1usize..=4, k in 1usize..=4, n in 1usize..=4, seed in any::<u64>(),
    ) {
        let gen = |off: u64, shape: &[usize]| {
            Tensor::from_fn(shape, |i| {
                (((seed ^ off).wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(i as u64) >> 17) % 100) as f32 / 25.0 - 2.0
            })
        };
        let a = gen(10, &[k, m]);
        let b = gen(11, &[k, n]);
        let at = linalg::transpose(&a).unwrap();
        let direct = mm(&at, &b, Gemm::new());
        let fused = mm(&a, &b, Gemm::new().trans_a());
        for (x, y) in direct.data().iter().zip(fused.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }

        let c = gen(12, &[m, k]);
        let d = gen(13, &[n, k]);
        let dt = linalg::transpose(&d).unwrap();
        let direct2 = mm(&c, &dt, Gemm::new());
        let fused2 = mm(&c, &d, Gemm::new().trans_b());
        for (x, y) in direct2.data().iter().zip(fused2.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(t in small_matrix()) {
        let p = special::softmax_rows(&t).unwrap();
        let (n, f) = (t.shape()[0], t.shape()[1]);
        for i in 0..n {
            let row = &p.data()[i * f..(i + 1) * f];
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_shift_invariance(t in small_matrix(), c in -5.0f32..5.0) {
        let p1 = special::softmax_rows(&t).unwrap();
        let p2 = special::softmax_rows(&t.add_scalar(c)).unwrap();
        for (a, b) in p1.data().iter().zip(p2.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn row_sums_equal_total(t in small_matrix()) {
        let rs = reduce::row_sums(&t).unwrap();
        prop_assert!((rs.sum() - t.sum()).abs() < 1e-3);
        let cs = reduce::col_sums(&t).unwrap();
        prop_assert!((cs.sum() - t.sum()).abs() < 1e-3);
    }

    #[test]
    fn argmax_picks_maximum(t in small_matrix()) {
        let idx = reduce::argmax_rows(&t).unwrap();
        let (n, f) = (t.shape()[0], t.shape()[1]);
        for i in 0..n {
            let row = &t.data()[i * f..(i + 1) * f];
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            prop_assert_eq!(row[idx[i]], max);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        c in 1usize..=3, h in 3usize..=6, w in 3usize..=6,
        k in 1usize..=3, s in 1usize..=2, p in 0usize..=1, seed in any::<u64>(),
    ) {
        let geo = conv::ConvGeometry::new(k, s, p);
        prop_assume!(geo.out_dim(h).is_ok() && geo.out_dim(w).is_ok());
        let gen = |off: u64, n: usize| -> Vec<f32> {
            (0..n).map(|i| {
                (((seed ^ off).wrapping_mul(0x2545F4914F6CDD1D).wrapping_add((i as u64).wrapping_mul(0x9E3779B97F4A7C15)) >> 40) % 64) as f32 / 16.0 - 2.0
            }).collect()
        };
        // <im2col(x), y> must equal <x, col2im(y)> since the maps are adjoint.
        let x = gen(1, c * h * w);
        let cols = conv::im2col_single(&x, c, h, w, geo).unwrap();
        let y_data = gen(2, cols.len());
        let y = Tensor::from_vec(cols.shape().to_vec(), y_data).unwrap();
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let mut xt = vec![0.0f32; c * h * w];
        conv::col2im_single(&y, c, h, w, geo, &mut xt).unwrap();
        let rhs: f32 = x.iter().zip(&xt).map(|(&a, &b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn maxpool_backward_conserves_gradient_mass(
        n in 1usize..=2, c in 1usize..=2, seed in any::<u64>(),
    ) {
        // Kernel 2 stride 2 on 4x4: every output grad lands on exactly one
        // input cell, so total mass is conserved.
        let x = Tensor::from_fn(&[n, c, 4, 4], |i| {
            ((seed.wrapping_add((i as u64).wrapping_mul(0x9E3779B97F4A7C15)) >> 30) % 97) as f32
        });
        let geo = conv::ConvGeometry::new(2, 2, 0);
        let out = conv::max_pool2d(&x, geo).unwrap();
        let g = Tensor::ones(out.output.shape());
        let gi = conv::max_pool2d_backward(&g, &out.argmax, x.shape()).unwrap();
        prop_assert!((gi.sum() - g.sum()).abs() < 1e-4);
    }

    #[test]
    fn serde_round_trip(t in small_matrix()) {
        let json = serde_json::to_string(&t).unwrap();
        let back: Tensor = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, t);
    }
}

// ---------------------------------------------------------------------------
// Thread-count determinism: the rt-par contract. Chunk boundaries are a
// pure function of problem size, and partial results fold in index order,
// so ANY pool size must produce bit-identical floats to the serial path.
// ---------------------------------------------------------------------------

/// Pool sizes exercised by the determinism properties (7 is deliberately
/// not a power of two — uneven chunk-to-worker ratios).
const POOLS: [usize; 4] = [1, 2, 4, 7];

/// Runs `f` under each pool size and asserts the output *bits* match the
/// single-threaded reference. Restores a 1-thread pool afterwards.
fn assert_pool_invariant<F: FnMut() -> Vec<f32>>(mut f: F) -> Result<(), TestCaseError> {
    rt_par::set_threads(1);
    let reference: Vec<u32> = f().iter().map(|v| v.to_bits()).collect();
    for &t in &POOLS[1..] {
        rt_par::set_threads(t);
        let got: Vec<u32> = f().iter().map(|v| v.to_bits()).collect();
        rt_par::set_threads(1);
        prop_assert_eq!(&got, &reference, "pool size {} diverged", t);
    }
    Ok(())
}

/// Deterministic pseudo-random data stream (SplitMix-style), independent
/// of any RNG crate so the property is self-contained.
fn stream(seed: u64, n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let x = seed
                .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_mul(0x2545_F491_4F6C_DD1D);
            ((x >> 40) % 2048) as f32 / 256.0 - 4.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// GEMM row tiles split whenever m exceeds the grain-derived tile, so
    /// these shapes cross chunk boundaries while staying fast.
    #[test]
    fn gemm_is_pool_size_invariant(
        m in 1usize..=48, k in 8usize..=48, n in 8usize..=48,
        ta in proptest::bool::ANY, tb in proptest::bool::ANY, seed in any::<u64>(),
    ) {
        let (ra, ca) = if ta { (k, m) } else { (m, k) };
        let (rb, cb) = if tb { (n, k) } else { (k, n) };
        let a = Tensor::from_vec(vec![ra, ca], stream(seed, ra * ca)).unwrap();
        let b = Tensor::from_vec(vec![rb, cb], stream(seed ^ 0xABCD, rb * cb)).unwrap();
        let cfg = Gemm { trans_a: ta, trans_b: tb, ..Gemm::new() };
        assert_pool_invariant(|| {
            let mut out = Tensor::zeros(&[m, n]);
            linalg::gemm(&a, &b, cfg, &mut out).unwrap();
            out.into_vec()
        })?;
    }

    /// Convolution fans out per sample; any batch > 1 runs multi-chunk.
    #[test]
    fn conv_forward_is_pool_size_invariant(
        bn in 1usize..=5, c in 1usize..=3, co in 1usize..=4, hw in 3usize..=8,
        seed in any::<u64>(),
    ) {
        let x = Tensor::from_vec(vec![bn, c, hw, hw], stream(seed, bn * c * hw * hw)).unwrap();
        let w = Tensor::from_vec(vec![co, c * 9], stream(seed ^ 0x55, co * c * 9)).unwrap();
        let geo = conv::ConvGeometry::new(3, 1, 1);
        assert_pool_invariant(|| {
            conv::conv2d_forward(&x, &w, None, geo).unwrap().into_vec()
        })?;
    }

    /// Reductions chunk by output count; sizes here are large enough for
    /// the row/column/channel paths to split into several tasks.
    #[test]
    fn reductions_are_pool_size_invariant(
        n in 1usize..=40, f in 1usize..=96, seed in any::<u64>(),
    ) {
        let t = Tensor::from_vec(vec![n, f], stream(seed, n * f)).unwrap();
        assert_pool_invariant(|| {
            let mut out = reduce::row_sums(&t).unwrap().into_vec();
            out.extend(reduce::col_sums(&t).unwrap().into_vec());
            out.extend(reduce::max_rows(&t).unwrap().into_vec());
            out.extend(reduce::argmax_rows(&t).unwrap().into_iter().map(|i| i as f32));
            out.push(t.sum());
            out.push(t.l1_norm());
            out.push(t.l2_norm());
            out
        })?;
    }

    /// Elementwise maps split at a fixed grain; combined with zip ops they
    /// cover the map/zip_map/map_inplace kernels.
    #[test]
    fn elementwise_ops_are_pool_size_invariant(len in 1usize..=20_000, seed in any::<u64>()) {
        let a = Tensor::from_vec(vec![len], stream(seed, len)).unwrap();
        let b = Tensor::from_vec(vec![len], stream(seed ^ 0x77, len)).unwrap();
        assert_pool_invariant(|| {
            let mut out = a.add(&b).unwrap();
            out = out.mul(&a).unwrap();
            out.scale(1.25);
            out.into_vec()
        })?;
    }
}

// ---------------------------------------------------------------------------
// Packed-kernel equivalence: the rt_tensor::kern contract. The cache-blocked
// packed GEMM must reproduce the legacy kernels' bytes exactly for every
// transpose/accumulate variant, and the pooled conv lowering must be
// insensitive to dirty reused buffers.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every `(trans_a, trans_b, acc)` variant of the packed kernel must
    /// produce the legacy kernel's bytes exactly, at a serial and a
    /// parallel pool. Sizes straddle `kern::worth_packing`'s threshold,
    /// so both the micro-kernel interior and the edge-tile paths run.
    #[test]
    fn packed_gemm_is_bit_identical_to_legacy(
        m in 1usize..=64, k in 1usize..=64, n in 1usize..=64,
        ta in proptest::bool::ANY, tb in proptest::bool::ANY,
        acc in proptest::bool::ANY, seed in any::<u64>(),
    ) {
        let (ra, ca) = if ta { (k, m) } else { (m, k) };
        let (rb, cb) = if tb { (n, k) } else { (k, n) };
        let a = Tensor::from_vec(vec![ra, ca], stream(seed, ra * ca)).unwrap();
        let b = Tensor::from_vec(vec![rb, cb], stream(seed ^ 0xABCD, rb * cb)).unwrap();
        // acc=true reads the initial C, so both kernels must start from
        // the same bytes; acc=false must overwrite them regardless.
        let c0 = Tensor::from_vec(vec![m, n], stream(seed ^ 0x1EE7, m * n)).unwrap();
        let cfg = Gemm { trans_a: ta, trans_b: tb, acc };
        for threads in [1usize, 4] {
            rt_par::set_threads(threads);
            let mut run = |kernel| {
                let mut out = c0.clone();
                linalg::gemm_via(kernel, &a, &b, cfg, &mut out).unwrap();
                out.into_vec()
            };
            let legacy: Vec<u32> = run(linalg::Kernel::Legacy).iter().map(|v| v.to_bits()).collect();
            let packed: Vec<u32> = run(linalg::Kernel::Packed).iter().map(|v| v.to_bits()).collect();
            rt_par::set_threads(1);
            prop_assert_eq!(
                &packed, &legacy,
                "threads={} ta={} tb={} acc={}", threads, ta, tb, acc
            );
        }
    }

    /// The full conv forward (packed implicit-GEMM or legacy im2col,
    /// whichever dispatch picks for the shape) must equal an independently
    /// lowered im2col → legacy-GEMM → bias reference, and a second call —
    /// which leases the now-dirty pooled buffers — must not change a byte.
    #[test]
    fn conv_forward_matches_im2col_reference_and_pool_reuse(
        bn in 1usize..=3, c in 1usize..=3, co in 1usize..=8, hw in 4usize..=12,
        with_bias in proptest::bool::ANY, seed in any::<u64>(),
    ) {
        let x = Tensor::from_vec(vec![bn, c, hw, hw], stream(seed, bn * c * hw * hw)).unwrap();
        let w = Tensor::from_vec(vec![co, c * 9], stream(seed ^ 0x55, co * c * 9)).unwrap();
        let bias = stream(seed ^ 0xB1A5, co);
        let bias_opt = if with_bias { Some(&bias[..]) } else { None };
        let geo = conv::ConvGeometry::new(3, 1, 1);
        let plane = {
            let oh = geo.out_dim(hw).unwrap();
            oh * oh
        };
        let mut reference = Vec::with_capacity(bn * co * plane);
        for s in 0..bn {
            let sample = &x.data()[s * c * hw * hw..(s + 1) * c * hw * hw];
            let cols = conv::im2col_single(sample, c, hw, hw, geo).unwrap();
            let mut out_s = Tensor::zeros(&[co, plane]);
            linalg::gemm_via(linalg::Kernel::Legacy, &w, &cols, Gemm::new(), &mut out_s).unwrap();
            let mut out_s = out_s.into_vec();
            if let Some(b) = bias_opt {
                for (ch, &bv) in b.iter().enumerate() {
                    for v in &mut out_s[ch * plane..(ch + 1) * plane] {
                        *v += bv;
                    }
                }
            }
            reference.extend(out_s);
        }
        let reference: Vec<u32> = reference.iter().map(|v| v.to_bits()).collect();
        for threads in [1usize, 4] {
            rt_par::set_threads(threads);
            let mut run = || -> Vec<u32> {
                let out = conv::conv2d_forward(&x, &w, bias_opt, geo).unwrap();
                out.into_vec().iter().map(|v| v.to_bits()).collect()
            };
            let first = run();
            let again = run();
            rt_par::set_threads(1);
            prop_assert_eq!(&first, &reference, "threads={}", threads);
            prop_assert_eq!(&again, &reference, "pool reuse diverged at threads={}", threads);
        }
    }
}
