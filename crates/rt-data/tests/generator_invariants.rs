//! Integration tests for the synthetic generator's statistical guarantees
//! — the properties the paper's experiments rely on.

use rt_data::fid::fid;
use rt_data::{DownstreamSpec, FamilyConfig, TaskFamily};
use rt_tensor::Tensor;

fn mean_image(images: &Tensor, labels: &[usize], class: usize) -> Vec<f32> {
    let s = images.shape();
    let sample = s[1] * s[2] * s[3];
    let mut mean = vec![0.0f32; sample];
    let mut count = 0.0f32;
    for (i, &l) in labels.iter().enumerate() {
        if l == class {
            for (m, &v) in mean
                .iter_mut()
                .zip(&images.data()[i * sample..(i + 1) * sample])
            {
                *m += v;
            }
            count += 1.0;
        }
    }
    mean.iter_mut().for_each(|m| *m /= count.max(1.0));
    mean
}

#[test]
fn classes_are_statistically_separated() {
    // Different classes must have distinguishable means, otherwise no
    // model could learn the task at all.
    let family = TaskFamily::new(FamilyConfig::paper(), 17);
    let task = family.source_task(240, 0).expect("task");
    let m0 = mean_image(task.train.images(), task.train.labels(), 0);
    let m1 = mean_image(task.train.images(), task.train.labels(), 1);
    let dist: f32 = m0
        .iter()
        .zip(&m1)
        .map(|(&a, &b)| (a - b) * (a - b))
        .sum::<f32>()
        .sqrt();
    assert!(dist > 1.0, "class means too close: {dist}");
}

#[test]
fn pixel_statistics_are_sane() {
    let family = TaskFamily::new(FamilyConfig::paper(), 18);
    let task = family.source_task(128, 0).expect("task");
    let images = task.train.images();
    let mean = images.mean();
    let std = {
        let m = mean;
        images.map(|x| (x - m) * (x - m)).mean().sqrt()
    };
    assert!(mean.abs() < 0.3, "pixel mean {mean}");
    assert!((0.5..3.0).contains(&std), "pixel std {std}");
    assert!(images.all_finite());
}

#[test]
fn domain_gap_knob_orders_raw_pixel_fid() {
    // The central requirement of Fig. 9 / Tab. II: the gap knob must
    // produce a monotone-ish ordering of distribution distance. Verified
    // here on raw-pixel features (no model involved).
    let family = TaskFamily::new(FamilyConfig::paper(), 19);
    let source = family.source_task(160, 0).expect("source");
    let flat = |t: &Tensor| {
        let n = t.shape()[0];
        let f: usize = t.shape()[1..].iter().product();
        t.reshape(&[n, f]).expect("reshape")
    };
    // Raw pixels are high-dimensional; project to per-channel means to
    // keep covariance estimation sane: use mean over spatial dims per
    // channel plus global stats (6 features).
    let summarize = |t: &Tensor| {
        let s = t.shape().to_vec();
        let (n, c, hw) = (s[0], s[1], s[2] * s[3]);
        let mut rows = Vec::with_capacity(n * (c + 1));
        for b in 0..n {
            for ch in 0..c {
                let plane = &t.data()[(b * c + ch) * hw..(b * c + ch + 1) * hw];
                rows.push(plane.iter().sum::<f32>() / hw as f32);
            }
            let sample = &t.data()[b * c * hw..(b + 1) * c * hw];
            rows.push((sample.iter().map(|&x| x * x).sum::<f32>() / (c * hw) as f32).sqrt());
        }
        Tensor::from_vec(vec![n, c + 1], rows).expect("rows")
    };
    let _ = flat; // summarize supersedes the raw flattening
    let src_feats = summarize(source.train.images());

    let mut fids = Vec::new();
    for gap in [0.1f32, 0.5, 0.9] {
        let spec = DownstreamSpec {
            name: format!("fid-order-{gap}"),
            gap,
            num_classes: 6,
            train_size: 160,
            test_size: 0,
        };
        let task = family.downstream_task(&spec).expect("task");
        let feats = summarize(task.train.images());
        fids.push(fid(&src_feats, &feats).expect("fid"));
    }
    assert!(
        fids[0] < fids[2],
        "gap 0.1 must be closer than gap 0.9: {fids:?}"
    );
}

#[test]
fn downstream_tasks_are_distinct_per_name() {
    let family = TaskFamily::new(FamilyConfig::smoke(), 20);
    let mk = |name: &str| {
        family
            .downstream_task(&DownstreamSpec {
                name: name.to_string(),
                gap: 0.5,
                num_classes: 2,
                train_size: 8,
                test_size: 4,
            })
            .expect("task")
    };
    let a = mk("task-a");
    let b = mk("task-b");
    assert_ne!(
        a.train.images(),
        b.train.images(),
        "same spec under different names must be different tasks"
    );
    // Same name → identical task (deterministic derivation).
    let a2 = mk("task-a");
    assert_eq!(a.train.images(), a2.train.images());
}

#[test]
fn fragile_codes_never_transfer() {
    // The same class index in two different tasks must have *different*
    // fragile codes: class means differ at high-frequency even at gap 0.
    let family = TaskFamily::new(FamilyConfig::paper(), 21);
    let mk = |name: &str| {
        family
            .downstream_task(&DownstreamSpec {
                name: name.to_string(),
                gap: 0.0,
                num_classes: 2,
                train_size: 120,
                test_size: 0,
            })
            .expect("task")
    };
    let a = mk("codes-a");
    let b = mk("codes-b");
    let ma = mean_image(a.train.images(), a.train.labels(), 0);
    let mb = mean_image(b.train.images(), b.train.labels(), 0);
    // At gap 0 the prototype part is shared; the residual difference is
    // the code difference (amplitude 2·0.3 per pixel where codes differ).
    let diff_rms = (ma
        .iter()
        .zip(&mb)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f32>()
        / ma.len() as f32)
        .sqrt();
    assert!(
        diff_rms > 0.2,
        "fresh fragile codes should separate class means, rms {diff_rms}"
    );
}
