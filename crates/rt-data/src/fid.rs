//! Fréchet Inception Distance, computed exactly as the paper does but with
//! features from this workspace's own pretrained backbone instead of
//! Inception-v3 (see DESIGN.md: FID is used as a *relative* domain-gap
//! ranking, which any fixed feature extractor preserves).
//!
//! `FID(a, b) = ‖μₐ − μᵦ‖² + Tr(Σₐ + Σᵦ − 2·(Σₐ½ Σᵦ Σₐ½)½)`

use crate::Result;
use rt_tensor::{linalg, Tensor, TensorError};

/// First and second moments of a feature cloud.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStats {
    /// Mean feature vector, shape `[F]`.
    pub mean: Tensor,
    /// Covariance matrix, shape `[F, F]`.
    pub cov: Tensor,
}

/// Computes mean and covariance of `[N, F]` feature rows.
///
/// Uses the biased (1/N) covariance — the convention of the original FID
/// implementation is 1/(N−1); at the sample counts used here the ranking is
/// unaffected and 1/N is well-defined for N = 1.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-2 input and
/// [`TensorError::EmptyTensor`] for zero rows.
pub fn feature_stats(features: &Tensor) -> Result<FeatureStats> {
    if features.ndim() != 2 {
        return Err(TensorError::RankMismatch {
            expected: 2,
            actual: features.ndim(),
            op: "feature_stats",
        });
    }
    let (n, f) = (features.shape()[0], features.shape()[1]);
    if n == 0 {
        return Err(TensorError::EmptyTensor {
            op: "feature_stats",
        });
    }
    let inv_n = 1.0 / n as f32;
    let data = features.data();
    let mut mean = vec![0.0f32; f];
    for row in data.chunks(f) {
        for (m, &v) in mean.iter_mut().zip(row) {
            *m += v;
        }
    }
    mean.iter_mut().for_each(|m| *m *= inv_n);
    // Centered covariance.
    let mut cov = vec![0.0f32; f * f];
    let mut centered = vec![0.0f32; f];
    for row in data.chunks(f) {
        for ((c, &v), &m) in centered.iter_mut().zip(row).zip(&mean) {
            *c = v - m;
        }
        for i in 0..f {
            let ci = centered[i];
            if ci == 0.0 {
                continue;
            }
            let dst = &mut cov[i * f..(i + 1) * f];
            for (d, &cj) in dst.iter_mut().zip(&centered) {
                *d += ci * cj;
            }
        }
    }
    cov.iter_mut().for_each(|c| *c *= inv_n);
    Ok(FeatureStats {
        mean: Tensor::from_vec(vec![f], mean)?,
        cov: Tensor::from_vec(vec![f, f], cov)?,
    })
}

/// Plain overwrite product `A × B` through the unified gemm entry point.
fn mm(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let mut out = Tensor::zeros(&[a.shape()[0], b.shape()[1]]);
    linalg::gemm(a, b, linalg::Gemm::new(), &mut out)?;
    Ok(out)
}

/// Matrix square root of a symmetric PSD matrix via eigendecomposition,
/// clamping small negative eigenvalues (roundoff) to zero.
fn sqrtm_psd(a: &Tensor) -> Result<Tensor> {
    let (vals, v) = linalg::sym_eigen(a, 30)?;
    let n = vals.len();
    // S = V diag(sqrt(max(λ, 0))) Vᵀ
    let mut scaled = v.clone(); // columns scaled by sqrt(λ)
    let sd = scaled.data_mut();
    for (j, &lam) in vals.iter().enumerate() {
        let s = lam.max(0.0).sqrt();
        for i in 0..n {
            sd[i * n + j] *= s;
        }
    }
    let vt = linalg::transpose(&v)?;
    mm(&scaled, &vt)
}

/// Fréchet distance between two feature-moment pairs.
///
/// # Errors
///
/// Returns a shape error if the dimensions disagree.
pub fn frechet_distance(a: &FeatureStats, b: &FeatureStats) -> Result<f64> {
    if a.mean.shape() != b.mean.shape() || a.cov.shape() != b.cov.shape() {
        return Err(TensorError::ShapeMismatch {
            lhs: a.mean.shape().to_vec(),
            rhs: b.mean.shape().to_vec(),
            op: "frechet_distance",
        });
    }
    let mean_term: f64 = a
        .mean
        .data()
        .iter()
        .zip(b.mean.data())
        .map(|(&x, &y)| {
            let d = (x - y) as f64;
            d * d
        })
        .sum();
    let sa = sqrtm_psd(&a.cov)?;
    let inner = mm(&mm(&sa, &b.cov)?, &sa)?;
    let cross = sqrtm_psd(&inner)?;
    let f = a.mean.len();
    let trace = |t: &Tensor| -> f64 { (0..f).map(|i| t.data()[i * f + i] as f64).sum() };
    let cov_term = trace(&a.cov) + trace(&b.cov) - 2.0 * trace(&cross);
    // Numerical floor: the true distance is non-negative.
    Ok((mean_term + cov_term).max(0.0))
}

/// One-call FID between two `[N, F]` feature clouds.
///
/// # Errors
///
/// Propagates moment-computation and shape errors.
///
/// # Example
///
/// ```rust
/// use rt_data::fid::fid;
/// use rt_tensor::{init, rng::rng_from_seed, Tensor};
///
/// # fn main() -> Result<(), rt_tensor::TensorError> {
/// let mut rng = rng_from_seed(0);
/// let a = init::normal(&[200, 4], 0.0, 1.0, &mut rng);
/// let b = init::normal(&[200, 4], 3.0, 1.0, &mut rng);
/// assert!(fid(&a, &b)? > fid(&a, &a)?);
/// # Ok(())
/// # }
/// ```
pub fn fid(features_a: &Tensor, features_b: &Tensor) -> Result<f64> {
    let sa = feature_stats(features_a)?;
    let sb = feature_stats(features_b)?;
    frechet_distance(&sa, &sb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_tensor::init;
    use rt_tensor::rng::rng_from_seed;

    #[test]
    fn stats_match_manual_computation() {
        let f = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        let s = feature_stats(&f).unwrap();
        assert_eq!(s.mean.data(), &[2.0, 4.0]);
        // cov = E[(x−μ)(x−μ)ᵀ] with 1/N: [[1, 2], [2, 4]]
        assert_eq!(s.cov.data(), &[1.0, 2.0, 2.0, 4.0]);
    }

    #[test]
    fn identical_clouds_have_near_zero_fid() {
        let mut rng = rng_from_seed(1);
        let a = init::normal(&[300, 6], 0.0, 1.0, &mut rng);
        let d = fid(&a, &a).unwrap();
        assert!(d < 1e-2, "self-FID should vanish, got {d}");
    }

    #[test]
    fn mean_shift_dominates_for_equal_covariance() {
        // Two unit Gaussians 3 apart per dim: FID ≈ F · 9 for F dims.
        let mut rng = rng_from_seed(2);
        let a = init::normal(&[2000, 3], 0.0, 1.0, &mut rng);
        let b = init::normal(&[2000, 3], 3.0, 1.0, &mut rng);
        let d = fid(&a, &b).unwrap();
        assert!((d - 27.0).abs() < 4.0, "expected ≈27, got {d}");
    }

    #[test]
    fn variance_difference_contributes() {
        // Same mean, different scale: FID = Σ (σ1 − σ2)² per dim.
        let mut rng = rng_from_seed(3);
        let a = init::normal(&[4000, 2], 0.0, 1.0, &mut rng);
        let b = init::normal(&[4000, 2], 0.0, 3.0, &mut rng);
        let d = fid(&a, &b).unwrap();
        assert!((d - 8.0).abs() < 1.5, "expected ≈8, got {d}");
    }

    #[test]
    fn fid_is_symmetric() {
        let mut rng = rng_from_seed(4);
        let a = init::normal(&[300, 4], 0.0, 1.0, &mut rng);
        let b = init::normal(&[300, 4], 1.0, 2.0, &mut rng);
        let dab = fid(&a, &b).unwrap();
        let dba = fid(&b, &a).unwrap();
        assert!((dab - dba).abs() / dab.max(1.0) < 0.02);
    }

    #[test]
    fn monotone_in_shift_magnitude() {
        let mut rng = rng_from_seed(5);
        let a = init::normal(&[500, 4], 0.0, 1.0, &mut rng);
        let mut last = -1.0;
        for shift in [0.5f32, 1.0, 2.0, 4.0] {
            let b = init::normal(&[500, 4], shift, 1.0, &mut rng);
            let d = fid(&a, &b).unwrap();
            assert!(d > last, "FID must grow with shift: {d} after {last}");
            last = d;
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(feature_stats(&Tensor::zeros(&[3])).is_err());
        assert!(feature_stats(&Tensor::zeros(&[0, 4])).is_err());
        let a = feature_stats(&Tensor::ones(&[2, 3])).unwrap();
        let b = feature_stats(&Tensor::ones(&[2, 4])).unwrap();
        assert!(frechet_distance(&a, &b).is_err());
    }

    #[test]
    fn sqrtm_recovers_known_root() {
        // A = diag(4, 9) → sqrt = diag(2, 3).
        let a = Tensor::from_vec(vec![2, 2], vec![4.0, 0.0, 0.0, 9.0]).unwrap();
        let s = sqrtm_psd(&a).unwrap();
        assert!((s.at(&[0, 0]).unwrap() - 2.0).abs() < 1e-4);
        assert!((s.at(&[1, 1]).unwrap() - 3.0).abs() < 1e-4);
        assert!(s.at(&[0, 1]).unwrap().abs() < 1e-4);
    }
}
