//! Internal pattern generators: smooth (robust) prototypes, pixel-level
//! (fragile) codes, and instance augmentations.

use rand::Rng;
use rt_tensor::init;
use rt_tensor::Tensor;

/// Generates a smooth low-frequency pattern of shape `[C, H, W]` by drawing
/// a coarse `[C, H/f, W/f]` grid of standard normals and upsampling it with
/// bilinear interpolation. The result is normalized to unit RMS so every
/// prototype carries the same energy.
pub fn smooth_pattern<R: Rng>(
    channels: usize,
    height: usize,
    width: usize,
    coarse_factor: usize,
    rng: &mut R,
) -> Tensor {
    let ch = (height / coarse_factor).max(2);
    let cw = (width / coarse_factor).max(2);
    let coarse = init::normal(&[channels, ch, cw], 0.0, 1.0, rng);
    let mut out = Tensor::zeros(&[channels, height, width]);
    let od = out.data_mut();
    let cd = coarse.data();
    for c in 0..channels {
        for y in 0..height {
            // Map the output pixel to coarse-grid coordinates.
            let fy = y as f32 * (ch - 1) as f32 / (height - 1).max(1) as f32;
            let y0 = fy.floor() as usize;
            let y1 = (y0 + 1).min(ch - 1);
            let ty = fy - y0 as f32;
            for x in 0..width {
                let fx = x as f32 * (cw - 1) as f32 / (width - 1).max(1) as f32;
                let x0 = fx.floor() as usize;
                let x1 = (x0 + 1).min(cw - 1);
                let tx = fx - x0 as f32;
                let g = |yy: usize, xx: usize| cd[(c * ch + yy) * cw + xx];
                let v = g(y0, x0) * (1.0 - ty) * (1.0 - tx)
                    + g(y0, x1) * (1.0 - ty) * tx
                    + g(y1, x0) * ty * (1.0 - tx)
                    + g(y1, x1) * ty * tx;
                od[(c * height + y) * width + x] = v;
            }
        }
    }
    normalize_rms(&mut out);
    out
}

/// Generates a high-frequency ±1 pixel code of shape `[C, H, W]` (unit RMS
/// by construction).
pub fn pixel_code<R: Rng>(channels: usize, height: usize, width: usize, rng: &mut R) -> Tensor {
    Tensor::from_fn(&[channels, height, width], |_| {
        if rng.gen::<bool>() {
            1.0
        } else {
            -1.0
        }
    })
}

/// Rescales a pattern to unit root-mean-square amplitude in place.
pub fn normalize_rms(t: &mut Tensor) {
    let rms = (t.data().iter().map(|&x| x * x).sum::<f32>() / t.len().max(1) as f32).sqrt();
    if rms > 1e-12 {
        t.scale(1.0 / rms);
    }
}

/// Circularly shifts a `[C, H, W]` pattern by `(dy, dx)` pixels — the
/// instance-level translation augmentation.
pub fn roll(t: &Tensor, dy: i64, dx: i64) -> Tensor {
    let s = t.shape();
    let (c, h, w) = (s[0], s[1], s[2]);
    let mut out = Tensor::zeros(s);
    let od = out.data_mut();
    let td = t.data();
    let wrap = |v: i64, m: usize| -> usize {
        let m = m as i64;
        (((v % m) + m) % m) as usize
    };
    for ch in 0..c {
        for y in 0..h {
            let sy = wrap(y as i64 - dy, h);
            for x in 0..w {
                let sx = wrap(x as i64 - dx, w);
                od[(ch * h + y) * w + x] = td[(ch * h + sy) * w + sx];
            }
        }
    }
    out
}

/// Horizontally flips a `[C, H, W]` pattern.
pub fn hflip(t: &Tensor) -> Tensor {
    let s = t.shape();
    let (c, h, w) = (s[0], s[1], s[2]);
    let mut out = Tensor::zeros(s);
    let od = out.data_mut();
    let td = t.data();
    for ch in 0..c {
        for y in 0..h {
            for x in 0..w {
                od[(ch * h + y) * w + x] = td[(ch * h + y) * w + (w - 1 - x)];
            }
        }
    }
    out
}

/// Applies a `[C, C]` channel-mixing matrix to a `[C, H, W]` pattern:
/// `out[c'] = Σ_c M[c', c] · in[c]`. Used by the downstream-task color
/// remix.
pub fn channel_mix(t: &Tensor, mix: &[Vec<f32>]) -> Tensor {
    let s = t.shape();
    let (c, h, w) = (s[0], s[1], s[2]);
    debug_assert_eq!(mix.len(), c);
    let mut out = Tensor::zeros(s);
    let od = out.data_mut();
    let td = t.data();
    let plane = h * w;
    for (cp, row) in mix.iter().enumerate() {
        for (cc, &coeff) in row.iter().enumerate() {
            if coeff == 0.0 {
                continue;
            }
            for p in 0..plane {
                od[cp * plane + p] += coeff * td[cc * plane + p];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_tensor::rng::rng_from_seed;

    #[test]
    fn smooth_pattern_is_unit_rms_and_low_frequency() {
        let mut rng = rng_from_seed(0);
        let p = smooth_pattern(3, 16, 16, 4, &mut rng);
        let rms = (p.data().iter().map(|&x| x * x).sum::<f32>() / p.len() as f32).sqrt();
        assert!((rms - 1.0).abs() < 1e-4);
        // Low frequency: neighboring pixels are highly correlated, so the
        // mean absolute horizontal difference is much smaller than the RMS.
        let mut diff_sum = 0.0;
        let mut count = 0;
        for c in 0..3 {
            for y in 0..16 {
                for x in 0..15 {
                    let a = p.at(&[c, y, x]).unwrap();
                    let b = p.at(&[c, y, x + 1]).unwrap();
                    diff_sum += (a - b).abs();
                    count += 1;
                }
            }
        }
        let mean_abs_diff = diff_sum / count as f32;
        assert!(
            mean_abs_diff < 0.5,
            "smooth pattern should vary slowly, mean |Δ| = {mean_abs_diff}"
        );
    }

    #[test]
    fn pixel_code_is_high_frequency() {
        let mut rng = rng_from_seed(1);
        let p = pixel_code(1, 16, 16, &mut rng);
        assert!(p.data().iter().all(|&v| v == 1.0 || v == -1.0));
        // Roughly balanced.
        let pos = p.data().iter().filter(|&&v| v > 0.0).count();
        assert!(pos > 80 && pos < 176, "pos count {pos}");
    }

    #[test]
    fn roll_wraps_and_preserves_content() {
        let t = Tensor::from_fn(&[1, 2, 3], |i| i as f32);
        let r = roll(&t, 0, 1);
        assert_eq!(r.data(), &[2.0, 0.0, 1.0, 5.0, 3.0, 4.0]);
        let back = roll(&r, 0, -1);
        assert_eq!(back, t);
        // Vertical roll.
        let rv = roll(&t, 1, 0);
        assert_eq!(rv.data(), &[3.0, 4.0, 5.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn hflip_is_involutive() {
        let t = Tensor::from_fn(&[2, 2, 3], |i| i as f32);
        assert_eq!(hflip(&hflip(&t)), t);
        let f = hflip(&t);
        assert_eq!(f.at(&[0, 0, 0]).unwrap(), 2.0);
    }

    #[test]
    fn channel_mix_identity_is_noop() {
        let t = Tensor::from_fn(&[2, 2, 2], |i| i as f32);
        let eye = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(channel_mix(&t, &eye), t);
        let swap = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let s = channel_mix(&t, &swap);
        assert_eq!(s.at(&[0, 0, 0]).unwrap(), t.at(&[1, 0, 0]).unwrap());
    }

    #[test]
    fn normalize_rms_handles_zero() {
        let mut z = Tensor::zeros(&[4]);
        normalize_rms(&mut z); // must not divide by zero
        assert_eq!(z.sum(), 0.0);
    }
}
