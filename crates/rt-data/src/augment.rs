//! Train-time image augmentations for NCHW batches.
//!
//! The paper's finetuning uses standard augmentation (random crops and
//! flips); these are the batch-level equivalents for this workspace's
//! synthetic images. All functions are pure given the RNG, preserving the
//! workspace's determinism guarantees.

use rand::Rng;
use rt_tensor::{Result, Tensor, TensorError};

fn check_nchw(t: &Tensor, op: &'static str) -> Result<[usize; 4]> {
    if t.ndim() != 4 {
        return Err(TensorError::RankMismatch {
            expected: 4,
            actual: t.ndim(),
            op,
        });
    }
    let s = t.shape();
    Ok([s[0], s[1], s[2], s[3]])
}

/// Random pad-and-crop: each image is zero-padded by `pad` pixels on every
/// side and a random window of the original size is cropped back out — the
/// classic CIFAR augmentation.
///
/// # Errors
///
/// Returns a rank error for non-NCHW input.
pub fn random_crop<R: Rng>(images: &Tensor, pad: usize, rng: &mut R) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(images, "random_crop")?;
    if pad == 0 {
        return Ok(images.clone());
    }
    let (ph, pw) = (h + 2 * pad, w + 2 * pad);
    let mut out = Tensor::zeros(images.shape());
    let src = images.data();
    let dst = out.data_mut();
    for b in 0..n {
        let oy = rng.gen_range(0..=2 * pad);
        let ox = rng.gen_range(0..=2 * pad);
        for ch in 0..c {
            for y in 0..h {
                // Source row in padded coordinates.
                let py = y + oy;
                if py < pad || py >= pad + h {
                    continue; // zero padding region
                }
                let sy = py - pad;
                for x in 0..w {
                    let px = x + ox;
                    if px < pad || px >= pad + w {
                        continue;
                    }
                    let sx = px - pad;
                    dst[((b * c + ch) * h + y) * w + x] = src[((b * c + ch) * h + sy) * w + sx];
                }
            }
        }
        let _ = (ph, pw);
    }
    Ok(out)
}

/// Random horizontal flip: each image is mirrored with probability 1/2.
///
/// # Errors
///
/// Returns a rank error for non-NCHW input.
pub fn random_hflip<R: Rng>(images: &Tensor, rng: &mut R) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(images, "random_hflip")?;
    let mut out = images.clone();
    let data = out.data_mut();
    for b in 0..n {
        if !rng.gen::<bool>() {
            continue;
        }
        for ch in 0..c {
            for y in 0..h {
                let row = ((b * c + ch) * h + y) * w;
                data[row..row + w].reverse();
            }
        }
    }
    Ok(out)
}

/// Cutout: zeroes one random `size × size` square per image (DeVries &
/// Taylor) — a strong regularizer for tiny datasets.
///
/// # Errors
///
/// Returns a rank error for non-NCHW input.
pub fn cutout<R: Rng>(images: &Tensor, size: usize, rng: &mut R) -> Result<Tensor> {
    let [n, c, h, w] = check_nchw(images, "cutout")?;
    if size == 0 {
        return Ok(images.clone());
    }
    let size = size.min(h).min(w);
    let mut out = images.clone();
    let data = out.data_mut();
    for b in 0..n {
        let y0 = rng.gen_range(0..=h - size);
        let x0 = rng.gen_range(0..=w - size);
        for ch in 0..c {
            for y in y0..y0 + size {
                for x in x0..x0 + size {
                    data[((b * c + ch) * h + y) * w + x] = 0.0;
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_tensor::rng::rng_from_seed;

    fn batch() -> Tensor {
        Tensor::from_fn(&[2, 1, 4, 4], |i| i as f32 + 1.0)
    }

    #[test]
    fn crop_preserves_shape_and_is_deterministic() {
        let x = batch();
        let a = random_crop(&x, 1, &mut rng_from_seed(0)).unwrap();
        let b = random_crop(&x, 1, &mut rng_from_seed(0)).unwrap();
        assert_eq!(a.shape(), x.shape());
        assert_eq!(a, b);
        // pad=0 is identity.
        assert_eq!(random_crop(&x, 0, &mut rng_from_seed(1)).unwrap(), x);
    }

    #[test]
    fn crop_content_comes_from_the_original_or_padding() {
        let x = batch();
        let a = random_crop(&x, 2, &mut rng_from_seed(3)).unwrap();
        let original: std::collections::HashSet<u32> =
            x.data().iter().map(|v| v.to_bits()).collect();
        for &v in a.data() {
            assert!(
                v == 0.0 || original.contains(&v.to_bits()),
                "alien value {v}"
            );
        }
    }

    #[test]
    fn hflip_mirrors_rows() {
        let x = Tensor::from_vec(vec![1, 1, 1, 4], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        // Find a seed that flips the single image.
        let mut flipped = None;
        for seed in 0..16 {
            let y = random_hflip(&x, &mut rng_from_seed(seed)).unwrap();
            if y != x {
                flipped = Some(y);
                break;
            }
        }
        let y = flipped.expect("some seed flips");
        assert_eq!(y.data(), &[4.0, 3.0, 2.0, 1.0]);
        // Double flip with the same decisions is identity — verified via
        // applying reverse twice manually.
        let z = random_hflip(&y, &mut rng_from_seed(0)).unwrap();
        assert!(z == y || z == x);
    }

    #[test]
    fn cutout_zeroes_exactly_one_square_per_image() {
        let x = Tensor::ones(&[3, 2, 6, 6]);
        let y = cutout(&x, 2, &mut rng_from_seed(5)).unwrap();
        // Each image loses size² pixels per channel.
        let per_image = 2 * 2 * 2; // channels × size²
        assert_eq!(y.count_zeros(), 3 * per_image);
        // Oversized cutout clamps instead of panicking.
        let z = cutout(&x, 99, &mut rng_from_seed(6)).unwrap();
        assert_eq!(z.sum(), 0.0);
    }

    #[test]
    fn rank_validation() {
        let bad = Tensor::ones(&[4, 4]);
        assert!(random_crop(&bad, 1, &mut rng_from_seed(0)).is_err());
        assert!(random_hflip(&bad, &mut rng_from_seed(0)).is_err());
        assert!(cutout(&bad, 1, &mut rng_from_seed(0)).is_err());
    }
}
