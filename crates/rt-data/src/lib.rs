//! Synthetic vision tasks for the robust-tickets reproduction.
//!
//! The paper pretrains on ImageNet and transfers to CIFAR-10/100, eleven
//! VTAB tasks, and PASCAL VOC segmentation — none of which are available
//! (or tractable) in this environment. This crate implements the synthetic
//! substitute described in DESIGN.md, engineered so the *mechanism* the
//! paper studies is present by construction:
//!
//! * **Robust signal** — each class owns a smooth, low-frequency spatial
//!   prototype with high amplitude. This is the structure adversarial
//!   training forces a model to rely on.
//! * **Fragile signal** — each class also owns a high-frequency, pixel-level
//!   code with low amplitude. It is highly predictive on the source
//!   distribution (a natural model happily exploits it) but is destroyed by
//!   ℓ∞ perturbations of moderate ε — and, crucially, it is **resampled**
//!   on every downstream task, modeling dataset-specific shortcut features
//!   that never transfer.
//! * **Domain-gap knob** — a downstream task at gap `g ∈ [0, 1]` blends each
//!   class prototype with a fresh pattern, remixes color channels, and adds
//!   a task-specific background field. `g` monotonically controls the true
//!   distribution distance, which [`fid`] then measures exactly as the
//!   paper does (Fréchet distance on feature statistics).
//!
//! The [`TaskFamily`] type is the factory for everything: the source task,
//! parameterized downstream tasks, a 12-task VTAB-like suite, an OoD set,
//! and dense segmentation scenes built from the same prototype family.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod prototype;

pub mod augment;
pub mod family;
pub mod fid;
pub mod loader;
pub mod seg;

pub use dataset::Dataset;
pub use loader::{prefetch_default, set_prefetch_default, Batch, PrefetchLoader};
pub use family::{DownstreamSpec, FamilyConfig, Task, TaskFamily};
pub use seg::SegTask;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, rt_tensor::TensorError>;
