//! Dense segmentation scenes — the PASCAL VOC substitute.
//!
//! A scene is a smooth textured background with one to three rectangular
//! object patches stamped from the family's class prototypes. The label map
//! assigns class `k + 1` to pixels of object class `k` and 0 to background,
//! so a family with `F` foreground classes yields `F + 1` segmentation
//! classes.

use crate::prototype::{normalize_rms, smooth_pattern};
use crate::{Result, TaskFamily};
use rand::Rng;
use rt_tensor::{init, Tensor};

/// A dense-prediction dataset: images plus per-pixel labels.
#[derive(Debug, Clone)]
pub struct SegTask {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl SegTask {
    /// Generates `n` scenes from the family's prototypes using
    /// `foreground_classes` object categories.
    ///
    /// # Errors
    ///
    /// Propagates tensor construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `foreground_classes` is zero or exceeds the family's base
    /// class count.
    pub fn generate(family: &TaskFamily, foreground_classes: usize, n: usize) -> Result<SegTask> {
        SegTask::generate_with_gap(family, foreground_classes, n, 0.0)
    }

    /// Like [`SegTask::generate`], but the object textures are shifted
    /// away from the source prototypes by the domain-gap knob `gap` —
    /// each class texture becomes `normalize((1−g)·P + g·Q)` with a fresh
    /// smooth pattern `Q`, mirroring the classification downstream
    /// transform. The paper's segmentation target (PASCAL VOC) is a
    /// far-domain task relative to ImageNet, so the Fig. 7 driver uses a
    /// non-zero gap.
    ///
    /// # Errors
    ///
    /// Propagates tensor construction errors.
    ///
    /// # Panics
    ///
    /// Panics if `foreground_classes` is zero or exceeds the family's base
    /// class count.
    pub fn generate_with_gap(
        family: &TaskFamily,
        foreground_classes: usize,
        n: usize,
        gap: f32,
    ) -> Result<SegTask> {
        let cfg = family.config();
        assert!(
            foreground_classes > 0 && foreground_classes <= cfg.base_classes,
            "foreground classes must be in 1..={}",
            cfg.base_classes
        );
        let g = gap.clamp(0.0, 1.0);
        let (c, s) = (cfg.channels, cfg.image_size);
        let seeds = family.seeds().child("segmentation");
        let mut rng = seeds.child("scenes").rng();

        // Shifted object textures (class prototypes blended with fresh
        // patterns, as in the classification downstream transform).
        let textures: Vec<Tensor> = (0..foreground_classes)
            .map(|k| {
                let mut trng = seeds.child("texture").child_idx(k as u64).rng();
                let fresh = smooth_pattern(c, s, s, cfg.coarse_factor, &mut trng);
                let mut blended = family.prototypes()[k].mul_scalar(1.0 - g);
                blended.axpy(g, &fresh).expect("same shape");
                normalize_rms(&mut blended);
                blended
            })
            .collect();

        let mut images = Vec::with_capacity(n * c * s * s);
        let mut labels = Vec::with_capacity(n * s * s);
        for _ in 0..n {
            // Background: a fresh low-amplitude smooth field + noise.
            let bg = smooth_pattern(c, s, s, cfg.coarse_factor, &mut rng).mul_scalar(0.4);
            let mut img = bg;
            let noise = init::normal(&[c, s, s], 0.0, cfg.noise_std, &mut rng);
            img.add_assign(&noise)?;
            let mut label_map = vec![0usize; s * s];

            let objects = rng.gen_range(1..=3usize);
            for _ in 0..objects {
                let class = rng.gen_range(0..foreground_classes);
                let proto = &textures[class];
                // Random patch geometry (at least 3px, at most half the image).
                let ph = rng.gen_range(3..=(s / 2).max(3));
                let pw = rng.gen_range(3..=(s / 2).max(3));
                let py = rng.gen_range(0..=s - ph);
                let px = rng.gen_range(0..=s - pw);
                let amp = cfg.robust_amp * rng.gen_range(0.9..1.3);
                for y in py..py + ph {
                    for x in px..px + pw {
                        for ch in 0..c {
                            img.data_mut()[(ch * s + y) * s + x] =
                                amp * proto.data()[(ch * s + y) * s + x];
                        }
                        label_map[y * s + x] = class + 1;
                    }
                }
            }
            // Light pixel noise over everything so objects are not exactly
            // clean prototype crops.
            let post = init::normal(&[c, s, s], 0.0, 0.15, &mut rng);
            img.add_assign(&post)?;
            images.extend_from_slice(img.data());
            labels.extend_from_slice(&label_map);
        }
        Ok(SegTask {
            images: Tensor::from_vec(vec![n, c, s, s], images)?,
            labels,
            num_classes: foreground_classes + 1,
        })
    }

    /// Rebuilds a task from raw parts (used to slice generated scene pools
    /// into train/test splits).
    ///
    /// # Panics
    ///
    /// Panics if the label count is not `N·H·W`, `images` is not NCHW, or
    /// any label is `>= num_classes`.
    pub fn from_parts(images: Tensor, labels: Vec<usize>, num_classes: usize) -> SegTask {
        assert_eq!(images.ndim(), 4, "segmentation images must be NCHW");
        let s = images.shape();
        assert_eq!(labels.len(), s[0] * s[2] * s[3], "label count mismatch");
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        SegTask {
            images,
            labels,
            num_classes,
        }
    }

    /// Splits the task into a `(train, test)` pair at scene index `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_at(&self, at: usize) -> (SegTask, SegTask) {
        let s = self.images.shape().to_vec();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        assert!(at <= n, "split index out of range");
        let sample = c * h * w;
        let plane = h * w;
        let head = SegTask::from_parts(
            Tensor::from_vec(
                vec![at, c, h, w],
                self.images.data()[..at * sample].to_vec(),
            )
            .expect("consistent slice"),
            self.labels[..at * plane].to_vec(),
            self.num_classes,
        );
        let tail = SegTask::from_parts(
            Tensor::from_vec(
                vec![n - at, c, h, w],
                self.images.data()[at * sample..].to_vec(),
            )
            .expect("consistent slice"),
            self.labels[at * plane..].to_vec(),
            self.num_classes,
        );
        (head, tail)
    }

    /// Number of scenes.
    pub fn len(&self) -> usize {
        self.images.shape()[0]
    }

    /// Whether the task holds no scenes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The scene images `[N, C, H, W]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// Per-pixel labels in `(n, y, x)` row-major order, length `N·H·W`.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of segmentation classes (foreground classes + background).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Splits into sequential minibatches of `(images, pixel_labels)`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches(&self, batch_size: usize) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0);
        let s = self.images.shape();
        let (n, c, h, w) = (s[0], s[1], s[2], s[3]);
        let sample_len = c * h * w;
        let label_len = h * w;
        (0..n)
            .step_by(batch_size)
            .map(|start| {
                let end = (start + batch_size).min(n);
                let imgs = Tensor::from_vec(
                    vec![end - start, c, h, w],
                    self.images.data()[start * sample_len..end * sample_len].to_vec(),
                )
                .expect("consistent slicing");
                let labels = self.labels[start * label_len..end * label_len].to_vec();
                (imgs, labels)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FamilyConfig;

    fn task() -> SegTask {
        let family = TaskFamily::new(FamilyConfig::smoke(), 3);
        SegTask::generate(&family, 3, 6).unwrap()
    }

    #[test]
    fn shapes_and_counts() {
        let t = task();
        assert_eq!(t.len(), 6);
        assert_eq!(t.images().shape(), &[6, 3, 8, 8]);
        assert_eq!(t.labels().len(), 6 * 64);
        assert_eq!(t.num_classes(), 4);
        assert!(t.images().all_finite());
    }

    #[test]
    fn labels_are_in_range_and_contain_objects() {
        let t = task();
        assert!(t.labels().iter().all(|&l| l < 4));
        // Every scene has at least one object pixel and one background pixel.
        for scene in t.labels().chunks(64) {
            assert!(scene.iter().any(|&l| l > 0), "scene without objects");
            assert!(scene.contains(&0), "scene without background");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = task();
        let b = task();
        assert_eq!(a.images(), b.images());
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn batching_covers_all_scenes() {
        let t = task();
        let batches = t.batches(4);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].0.shape()[0], 4);
        assert_eq!(batches[1].0.shape()[0], 2);
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, 6 * 64);
    }

    #[test]
    #[should_panic(expected = "foreground classes")]
    fn rejects_zero_classes() {
        let family = TaskFamily::new(FamilyConfig::smoke(), 3);
        let _ = SegTask::generate(&family, 0, 2);
    }
}
