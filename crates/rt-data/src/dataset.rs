use crate::Result;
use rand::seq::SliceRandom;
use rand::Rng;
use rt_tensor::Tensor;
use std::sync::Arc;

/// An in-memory labeled image dataset (NCHW images + class labels).
///
/// The storage is `Arc`-shared: cloning a dataset is O(1) and never copies
/// pixels, which is what lets the [`crate::PrefetchLoader`] hand owned
/// handles to background staging tasks without lifetime gymnastics (the
/// crate forbids `unsafe`, so borrow erasure is not an option).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Arc<Tensor>,
    labels: Arc<Vec<usize>>,
    num_classes: usize,
}

impl Dataset {
    /// Bundles images and labels into a dataset.
    ///
    /// # Panics
    ///
    /// Panics if `images` is not rank 4, if the label count differs from the
    /// image count, or if any label is `>= num_classes`.
    pub fn new(images: Tensor, labels: Vec<usize>, num_classes: usize) -> Self {
        assert_eq!(images.ndim(), 4, "dataset images must be NCHW");
        assert_eq!(
            images.shape()[0],
            labels.len(),
            "image/label count mismatch"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "label out of range"
        );
        Dataset {
            images: Arc::new(images),
            labels: Arc::new(labels),
            num_classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The images, shape `[N, C, H, W]`.
    pub fn images(&self) -> &Tensor {
        self.images.as_ref()
    }

    /// The class labels.
    pub fn labels(&self) -> &[usize] {
        self.labels.as_slice()
    }

    /// O(1) handles to the shared storage, for background staging tasks
    /// that need `'static` ownership (see [`crate::PrefetchLoader`]).
    pub(crate) fn shared_parts(&self) -> (Arc<Tensor>, Arc<Vec<usize>>) {
        (Arc::clone(&self.images), Arc::clone(&self.labels))
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Shape of one sample: `[C, H, W]`.
    pub fn sample_shape(&self) -> [usize; 3] {
        let s = self.images.shape();
        [s[1], s[2], s[3]]
    }

    /// Gathers the samples at `indices` into a new `(images, labels)` pair.
    ///
    /// # Errors
    ///
    /// Returns an index error if any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> Result<(Tensor, Vec<usize>)> {
        let [c, h, w] = self.sample_shape();
        let sample_len = c * h * w;
        let mut data = vec![0.0f32; indices.len() * sample_len];
        let mut labels = Vec::with_capacity(indices.len());
        self.gather_into(indices, &mut data, &mut labels)?;
        Ok((
            Tensor::from_vec(vec![indices.len(), c, h, w], data)?,
            labels,
        ))
    }

    /// [`Dataset::gather`] into caller-owned storage: overwrites every
    /// element of `out` (which must hold exactly `indices.len()` samples)
    /// and refills `labels_out`. This is the allocation-free primitive the
    /// [`crate::PrefetchLoader`] builds on — `out` is typically leased
    /// from `rt_tensor::pool`.
    ///
    /// # Errors
    ///
    /// Returns an index error if any index is out of bounds, or a shape
    /// error if `out` has the wrong length.
    pub fn gather_into(
        &self,
        indices: &[usize],
        out: &mut [f32],
        labels_out: &mut Vec<usize>,
    ) -> Result<()> {
        let [c, h, w] = self.sample_shape();
        let sample_len = c * h * w;
        if out.len() != indices.len() * sample_len {
            return Err(rt_tensor::TensorError::ShapeMismatch {
                lhs: vec![out.len()],
                rhs: vec![indices.len() * sample_len],
                op: "dataset.gather_into",
            });
        }
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.len()) {
            return Err(rt_tensor::TensorError::IndexOutOfBounds {
                index: vec![bad],
                shape: self.images.shape().to_vec(),
            });
        }
        gather_raw(
            &self.images,
            &self.labels,
            indices,
            sample_len,
            out,
            labels_out,
        );
        Ok(())
    }

    /// Returns a new dataset containing the first `n` samples.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn take(&self, n: usize) -> Dataset {
        assert!(n <= self.len());
        let (images, labels) = self.gather(&(0..n).collect::<Vec<_>>()).expect("in range");
        Dataset::new(images, labels, self.num_classes)
    }

    /// Splits the dataset into shuffled minibatches. The final batch may be
    /// smaller than `batch_size`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn shuffled_batches<R: Rng>(
        &self,
        batch_size: usize,
        rng: &mut R,
    ) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0, "batch size must be positive");
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        order
            .chunks(batch_size)
            .map(|chunk| self.gather(chunk).expect("indices in range"))
            .collect()
    }

    /// Splits into sequential (unshuffled) minibatches for evaluation.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches(&self, batch_size: usize) -> Vec<(Tensor, Vec<usize>)> {
        assert!(batch_size > 0, "batch size must be positive");
        let order: Vec<usize> = (0..self.len()).collect();
        order
            .chunks(batch_size)
            .map(|chunk| self.gather(chunk).expect("indices in range"))
            .collect()
    }

    /// Per-class sample counts (useful for balance assertions in tests).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in self.labels.iter() {
            hist[l] += 1;
        }
        hist
    }
}

/// The bounds-unchecked core of [`Dataset::gather_into`], shaped so the
/// prefetch loader's staging closure (which owns `Arc` handles, not a
/// `Dataset`) can call it directly. Callers guarantee indices are in
/// range and `out.len() == indices.len() * sample_len`.
pub(crate) fn gather_raw(
    images: &Tensor,
    labels_src: &[usize],
    indices: &[usize],
    sample_len: usize,
    out: &mut [f32],
    labels_out: &mut Vec<usize>,
) {
    let src = images.data();
    labels_out.clear();
    for (k, &i) in indices.iter().enumerate() {
        out[k * sample_len..(k + 1) * sample_len]
            .copy_from_slice(&src[i * sample_len..(i + 1) * sample_len]);
        labels_out.push(labels_src[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_tensor::rng::rng_from_seed;

    fn dataset(n: usize) -> Dataset {
        let images = Tensor::from_fn(&[n, 1, 2, 2], |i| i as f32);
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        Dataset::new(images, labels, 3)
    }

    #[test]
    fn accessors() {
        let d = dataset(6);
        assert_eq!(d.len(), 6);
        assert!(!d.is_empty());
        assert_eq!(d.sample_shape(), [1, 2, 2]);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.class_histogram(), vec![2, 2, 2]);
    }

    #[test]
    fn gather_selects_correct_samples() {
        let d = dataset(4);
        let (imgs, labels) = d.gather(&[2, 0]).unwrap();
        assert_eq!(imgs.shape(), &[2, 1, 2, 2]);
        assert_eq!(imgs.data()[0], 8.0); // sample 2 starts at flat index 8
        assert_eq!(imgs.data()[4], 0.0);
        assert_eq!(labels, vec![2, 0]);
        assert!(d.gather(&[9]).is_err());
    }

    #[test]
    fn batches_cover_every_sample_once() {
        let d = dataset(10);
        let mut rng = rng_from_seed(0);
        let batches = d.shuffled_batches(3, &mut rng);
        assert_eq!(batches.len(), 4); // 3+3+3+1
        let total: usize = batches.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(total, 10);
        // Every image value appears exactly once (values identify samples).
        let mut firsts: Vec<f32> = batches
            .iter()
            .flat_map(|(imgs, l)| (0..l.len()).map(move |i| imgs.data()[i * 4]))
            .collect();
        firsts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f32> = (0..10).map(|i| (i * 4) as f32).collect();
        assert_eq!(firsts, expect);
    }

    #[test]
    fn shuffling_differs_between_seeds() {
        let d = dataset(16);
        let a = d.shuffled_batches(16, &mut rng_from_seed(1));
        let b = d.shuffled_batches(16, &mut rng_from_seed(2));
        assert_ne!(a[0].1, b[0].1);
        // Same seed → same order.
        let c = d.shuffled_batches(16, &mut rng_from_seed(1));
        assert_eq!(a[0].1, c[0].1);
    }

    #[test]
    fn take_prefix() {
        let d = dataset(5);
        let t = d.take(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.labels(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let images = Tensor::zeros(&[1, 1, 2, 2]);
        let _ = Dataset::new(images, vec![5], 3);
    }

    #[test]
    #[should_panic(expected = "image/label count mismatch")]
    fn rejects_count_mismatch() {
        let images = Tensor::zeros(&[2, 1, 2, 2]);
        let _ = Dataset::new(images, vec![0], 3);
    }
}
