//! The synthetic task family: one source task plus arbitrarily many
//! downstream tasks at controlled domain gaps.

use crate::prototype::{channel_mix, hflip, normalize_rms, pixel_code, roll, smooth_pattern};
use crate::{Dataset, Result};
use rand::Rng;
use rt_tensor::rng::SeedStream;
use rt_tensor::{init, Tensor};
use serde::{Deserialize, Serialize};

/// Global knobs of the synthetic generator.
///
/// The amplitudes encode the paper's mechanism: `robust_amp` is the energy
/// of the transferable low-frequency class structure, `fragile_amp` the
/// energy of the dataset-specific shortcut features that ℓ∞ perturbations
/// of ε ≈ `fragile_amp` erase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FamilyConfig {
    /// Square image side length.
    pub image_size: usize,
    /// Image channels (3 ≈ RGB).
    pub channels: usize,
    /// Number of classes in the source prototype pool.
    pub base_classes: usize,
    /// Amplitude of the smooth class prototypes.
    pub robust_amp: f32,
    /// Amplitude of the per-class pixel codes.
    pub fragile_amp: f32,
    /// Standard deviation of additive Gaussian pixel noise.
    pub noise_std: f32,
    /// Upsampling factor of the smooth patterns (higher = smoother).
    pub coarse_factor: usize,
    /// Maximum instance translation (pixels, circular).
    pub max_shift: i64,
}

impl FamilyConfig {
    /// The default experiment scale: 16×16×3 images, 12 base classes.
    ///
    /// The amplitudes were calibrated empirically (see DESIGN.md and the
    /// `probe_family` driver) so that the paper's phenomenon is expressed:
    /// the fragile codes are individually faint (amplitude 0.3, well below
    /// the pixel noise) but in aggregate highly predictive, so natural
    /// training exploits them while a PGD ball of ε ≈ 0.4 erases them.
    pub fn paper() -> Self {
        FamilyConfig {
            image_size: 16,
            channels: 3,
            base_classes: 12,
            robust_amp: 1.0,
            fragile_amp: 0.3,
            noise_std: 0.6,
            coarse_factor: 4,
            max_shift: 3,
        }
    }

    /// A tiny scale for unit tests and CI smoke runs.
    pub fn smoke() -> Self {
        FamilyConfig {
            image_size: 8,
            channels: 3,
            base_classes: 4,
            robust_amp: 1.0,
            fragile_amp: 0.5,
            noise_std: 0.3,
            coarse_factor: 2,
            max_shift: 1,
        }
    }
}

impl Default for FamilyConfig {
    fn default() -> Self {
        FamilyConfig::paper()
    }
}

/// Description of one downstream task derived from a [`TaskFamily`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DownstreamSpec {
    /// Human-readable task name (appears in experiment reports).
    pub name: String,
    /// Domain gap `g ∈ [0, 1]`: 0 = identical to the source distribution
    /// (minus the fragile codes), 1 = fully fresh prototypes.
    pub gap: f32,
    /// Number of classes (must not exceed the family's base class count).
    pub num_classes: usize,
    /// Training-set size (downstream tasks are data-poor by design).
    pub train_size: usize,
    /// Test-set size.
    pub test_size: usize,
}

impl DownstreamSpec {
    /// The CIFAR-10 analog: moderate gap, half the base classes.
    pub fn c10_analog(base_classes: usize, train: usize, test: usize) -> Self {
        DownstreamSpec {
            name: "c10-analog".to_string(),
            gap: 0.35,
            num_classes: (base_classes / 2).max(2),
            train_size: train,
            test_size: test,
        }
    }

    /// The CIFAR-100 analog: larger gap and the full class pool (a harder,
    /// more complex task, mirroring CIFAR-100 vs CIFAR-10).
    pub fn c100_analog(base_classes: usize, train: usize, test: usize) -> Self {
        DownstreamSpec {
            name: "c100-analog".to_string(),
            gap: 0.5,
            num_classes: base_classes,
            train_size: train,
            test_size: test,
        }
    }
}

/// A materialized task: train/test datasets plus provenance.
#[derive(Debug, Clone)]
pub struct Task {
    /// Task name (`"source"` or the downstream spec's name).
    pub name: String,
    /// Training split.
    pub train: Dataset,
    /// Test split.
    pub test: Dataset,
    /// Domain gap from the source distribution (0 for the source itself).
    pub gap: f32,
}

/// Factory for the whole synthetic universe: source task, downstream tasks,
/// the VTAB-like suite, and OoD data. Deterministic given `(config, seed)`.
#[derive(Debug, Clone)]
pub struct TaskFamily {
    config: FamilyConfig,
    seeds: SeedStream,
    prototypes: Vec<Tensor>,
    source_codes: Vec<Tensor>,
}

impl TaskFamily {
    /// Creates a family, generating the source prototype pool.
    pub fn new(config: FamilyConfig, seed: u64) -> Self {
        let seeds = SeedStream::new(seed);
        let (c, s) = (config.channels, config.image_size);
        let prototypes = (0..config.base_classes)
            .map(|k| {
                let mut rng = seeds.child("prototype").child_idx(k as u64).rng();
                smooth_pattern(c, s, s, config.coarse_factor, &mut rng)
            })
            .collect();
        let source_codes = (0..config.base_classes)
            .map(|k| {
                let mut rng = seeds.child("code").child_idx(k as u64).rng();
                pixel_code(c, s, s, &mut rng)
            })
            .collect();
        TaskFamily {
            config,
            seeds,
            prototypes,
            source_codes,
        }
    }

    /// The generator configuration.
    pub fn config(&self) -> &FamilyConfig {
        &self.config
    }

    /// Draws one image of class `label` given the class pattern set.
    fn sample_image<R: Rng>(
        &self,
        proto: &Tensor,
        code: &Tensor,
        background: Option<&Tensor>,
        rng: &mut R,
    ) -> Tensor {
        let cfg = &self.config;
        // Instance-level geometric jitter applies to the robust structure
        // only; the fragile code is a pixel-aligned shortcut by design.
        let dy = rng.gen_range(-cfg.max_shift..=cfg.max_shift);
        let dx = rng.gen_range(-cfg.max_shift..=cfg.max_shift);
        let mut p = roll(proto, dy, dx);
        if rng.gen::<bool>() {
            p = hflip(&p);
        }
        let alpha = cfg.robust_amp * rng.gen_range(0.8..1.2);
        let mut x = p.mul_scalar(alpha);
        x.axpy(cfg.fragile_amp, code).expect("same shape");
        if let Some(bg) = background {
            x.add_assign(bg).expect("same shape");
        }
        let noise = init::normal(x.shape(), 0.0, cfg.noise_std, rng);
        x.add_assign(&noise).expect("same shape");
        x
    }

    fn sample_dataset<R: Rng>(
        &self,
        protos: &[Tensor],
        codes: &[Tensor],
        background: Option<&Tensor>,
        n: usize,
        rng: &mut R,
    ) -> Result<Dataset> {
        let classes = protos.len();
        let cfg = &self.config;
        let (c, s) = (cfg.channels, cfg.image_size);
        let mut data = Vec::with_capacity(n * c * s * s);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % classes; // balanced by construction
            let img = self.sample_image(&protos[label], &codes[label], background, rng);
            data.extend_from_slice(img.data());
            labels.push(label);
        }
        Ok(Dataset::new(
            Tensor::from_vec(vec![n, c, s, s], data)?,
            labels,
            classes,
        ))
    }

    /// Materializes the source (pretraining) task with all base classes.
    ///
    /// # Errors
    ///
    /// Propagates tensor construction errors (internal consistency only).
    pub fn source_task(&self, train_size: usize, test_size: usize) -> Result<Task> {
        let mut train_rng = self.seeds.child("source/train").rng();
        let mut test_rng = self.seeds.child("source/test").rng();
        Ok(Task {
            name: "source".to_string(),
            train: self.sample_dataset(
                &self.prototypes,
                &self.source_codes,
                None,
                train_size,
                &mut train_rng,
            )?,
            test: self.sample_dataset(
                &self.prototypes,
                &self.source_codes,
                None,
                test_size,
                &mut test_rng,
            )?,
            gap: 0.0,
        })
    }

    /// Materializes a downstream task from a spec.
    ///
    /// The transformation implements the domain gap `g`:
    ///
    /// 1. each class prototype is blended with a fresh smooth pattern:
    ///    `P' = normalize((1−g)·P + g·Q)`,
    /// 2. color channels are remixed by `(1−g)·I + g·R`,
    /// 3. a task-specific background field of amplitude `0.5·g` is added,
    /// 4. the fragile pixel codes are **always** resampled — shortcut
    ///    features never transfer, regardless of `g`.
    ///
    /// # Errors
    ///
    /// Propagates tensor errors.
    ///
    /// # Panics
    ///
    /// Panics if `spec.num_classes` exceeds the family's base class count
    /// or is zero.
    pub fn downstream_task(&self, spec: &DownstreamSpec) -> Result<Task> {
        let cfg = &self.config;
        assert!(
            spec.num_classes > 0 && spec.num_classes <= cfg.base_classes,
            "downstream classes must be in 1..={}",
            cfg.base_classes
        );
        let task_seeds = self.seeds.child("task").child(&spec.name);
        let g = spec.gap.clamp(0.0, 1.0);
        let (c, s) = (cfg.channels, cfg.image_size);

        // Channel remix matrix (1−g)·I + g·R with row-normalized random R.
        let mut mix_rng = task_seeds.child("mix").rng();
        let mix: Vec<Vec<f32>> = (0..c)
            .map(|row| {
                let mut r: Vec<f32> = (0..c).map(|_| mix_rng.gen_range(-1.0..1.0)).collect();
                let norm = r.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
                r.iter_mut().for_each(|v| *v = *v / norm * g);
                r[row] += 1.0 - g;
                r
            })
            .collect();

        let protos: Vec<Tensor> = (0..spec.num_classes)
            .map(|k| {
                let mut rng = task_seeds.child("proto").child_idx(k as u64).rng();
                let fresh = smooth_pattern(c, s, s, cfg.coarse_factor, &mut rng);
                let mut blended = self.prototypes[k].mul_scalar(1.0 - g);
                blended.axpy(g, &fresh).expect("same shape");
                let mut mixed = channel_mix(&blended, &mix);
                normalize_rms(&mut mixed);
                mixed
            })
            .collect();

        // Fresh fragile codes: downstream shortcuts are task-specific.
        let codes: Vec<Tensor> = (0..spec.num_classes)
            .map(|k| {
                let mut rng = task_seeds.child("code").child_idx(k as u64).rng();
                pixel_code(c, s, s, &mut rng)
            })
            .collect();

        // Task-level background shift (class-uninformative, affects FID).
        let background = if g > 0.0 {
            let mut rng = task_seeds.child("background").rng();
            Some(smooth_pattern(c, s, s, cfg.coarse_factor, &mut rng).mul_scalar(0.5 * g))
        } else {
            None
        };

        let mut train_rng = task_seeds.child("train").rng();
        let mut test_rng = task_seeds.child("test").rng();
        Ok(Task {
            name: spec.name.clone(),
            train: self.sample_dataset(
                &protos,
                &codes,
                background.as_ref(),
                spec.train_size,
                &mut train_rng,
            )?,
            test: self.sample_dataset(
                &protos,
                &codes,
                background.as_ref(),
                spec.test_size,
                &mut test_rng,
            )?,
            gap: g,
        })
    }

    /// The 12-task VTAB-like suite: domain gaps sweep from near-source to
    /// far-domain, with alternating class counts, emulating the paper's
    /// Fig. 9 / Tab. II spread.
    pub fn vtab_suite(&self, train_size: usize, test_size: usize) -> Vec<DownstreamSpec> {
        let gaps = [
            0.05, 0.12, 0.2, 0.28, 0.36, 0.44, 0.52, 0.6, 0.68, 0.76, 0.85, 0.95,
        ];
        gaps.iter()
            .enumerate()
            .map(|(i, &gap)| DownstreamSpec {
                name: format!("vtab{i:02}-g{:02}", (gap * 100.0) as u32),
                gap,
                num_classes: if i % 2 == 0 {
                    (self.config.base_classes / 2).max(2)
                } else {
                    (2 * self.config.base_classes / 3).max(2)
                },
                train_size,
                test_size,
            })
            .collect()
    }

    /// Generates an out-of-distribution dataset: samples built from fresh
    /// prototypes outside the source pool (labels are placeholders — OoD
    /// detection only uses the images).
    ///
    /// # Errors
    ///
    /// Propagates tensor errors.
    pub fn ood_dataset(&self, n: usize) -> Result<Dataset> {
        let cfg = &self.config;
        let (c, s) = (cfg.channels, cfg.image_size);
        let ood_seeds = self.seeds.child("ood");
        let classes = cfg.base_classes.max(1);
        let protos: Vec<Tensor> = (0..classes)
            .map(|k| {
                let mut rng = ood_seeds.child("proto").child_idx(k as u64).rng();
                smooth_pattern(c, s, s, cfg.coarse_factor, &mut rng)
            })
            .collect();
        let codes: Vec<Tensor> = (0..classes)
            .map(|k| {
                let mut rng = ood_seeds.child("code").child_idx(k as u64).rng();
                pixel_code(c, s, s, &mut rng)
            })
            .collect();
        let mut rng = ood_seeds.child("samples").rng();
        self.sample_dataset(&protos, &codes, None, n, &mut rng)
    }

    /// Borrow of the source prototypes (used by the segmentation scene
    /// generator).
    pub(crate) fn prototypes(&self) -> &[Tensor] {
        &self.prototypes
    }

    /// Seed-stream accessor for sibling generators in this crate.
    pub(crate) fn seeds(&self) -> &SeedStream {
        &self.seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family() -> TaskFamily {
        TaskFamily::new(FamilyConfig::smoke(), 7)
    }

    #[test]
    fn source_task_shapes_and_balance() {
        let f = family();
        let task = f.source_task(40, 20).unwrap();
        assert_eq!(task.train.len(), 40);
        assert_eq!(task.test.len(), 20);
        assert_eq!(task.train.num_classes(), 4);
        assert_eq!(task.train.sample_shape(), [3, 8, 8]);
        assert_eq!(task.gap, 0.0);
        // Balanced classes.
        assert!(task.train.class_histogram().iter().all(|&c| c == 10));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = family().source_task(8, 4).unwrap();
        let b = family().source_task(8, 4).unwrap();
        assert_eq!(a.train.images(), b.train.images());
        assert_eq!(a.train.labels(), b.train.labels());
    }

    #[test]
    fn downstream_task_respects_spec() {
        let f = family();
        let spec = DownstreamSpec {
            name: "t".to_string(),
            gap: 0.4,
            num_classes: 3,
            train_size: 12,
            test_size: 6,
        };
        let task = f.downstream_task(&spec).unwrap();
        assert_eq!(task.train.num_classes(), 3);
        assert_eq!(task.train.len(), 12);
        assert_eq!(task.gap, 0.4);
    }

    #[test]
    fn zero_gap_task_shares_prototypes_but_not_codes() {
        // At g=0 the class means should correlate strongly with the source
        // prototypes (codes differ, noise differs).
        let f = family();
        let spec = DownstreamSpec {
            name: "zero-gap".to_string(),
            gap: 0.0,
            num_classes: 2,
            train_size: 40,
            test_size: 4,
        };
        let task = f.downstream_task(&spec).unwrap();
        // Average all class-0 images; compare with prototype 0.
        let [c, h, w] = task.train.sample_shape();
        let mut mean = vec![0.0f32; c * h * w];
        let mut count = 0;
        for (i, &l) in task.train.labels().iter().enumerate() {
            if l == 0 {
                let img = &task.train.images().data()[i * c * h * w..(i + 1) * c * h * w];
                for (m, &v) in mean.iter_mut().zip(img) {
                    *m += v;
                }
                count += 1;
            }
        }
        mean.iter_mut().for_each(|m| *m /= count as f32);
        let proto = &f.prototypes()[0];
        let dot: f32 = mean.iter().zip(proto.data()).map(|(&a, &b)| a * b).sum();
        let norm_m = mean.iter().map(|v| v * v).sum::<f32>().sqrt();
        let norm_p = proto.l2_norm();
        let cosine = dot / (norm_m * norm_p).max(1e-6);
        // The class mean also contains the task's fragile code and the
        // jitter-blurred prototype, so alignment is partial but clear.
        assert!(
            cosine > 0.35,
            "class mean should align with prototype, cos={cosine}"
        );
    }

    #[test]
    fn larger_gap_decorrelates_prototypes() {
        let f = family();
        let mk = |gap: f32, name: &str| {
            let spec = DownstreamSpec {
                name: name.to_string(),
                gap,
                num_classes: 2,
                train_size: 60,
                test_size: 4,
            };
            let task = f.downstream_task(&spec).unwrap();
            let [c, h, w] = task.train.sample_shape();
            let mut mean = vec![0.0f32; c * h * w];
            let mut count = 0.0f32;
            for (i, &l) in task.train.labels().iter().enumerate() {
                if l == 0 {
                    for (m, &v) in mean
                        .iter_mut()
                        .zip(&task.train.images().data()[i * c * h * w..(i + 1) * c * h * w])
                    {
                        *m += v;
                    }
                    count += 1.0;
                }
            }
            let proto = &f.prototypes()[0];
            let dot: f32 = mean.iter().zip(proto.data()).map(|(&a, &b)| a * b).sum();
            let nm = mean.iter().map(|v| v * v).sum::<f32>().sqrt();
            (dot / (nm * proto.l2_norm()).max(1e-6), count)
        };
        let (near, _) = mk(0.1, "near");
        let (far, _) = mk(0.9, "far");
        assert!(
            near.abs() > far.abs() || near > 0.4,
            "gap should reduce prototype correlation: near={near}, far={far}"
        );
    }

    #[test]
    fn vtab_suite_has_twelve_increasing_gaps() {
        let f = family();
        let suite = f.vtab_suite(16, 8);
        assert_eq!(suite.len(), 12);
        for pair in suite.windows(2) {
            assert!(pair[0].gap < pair[1].gap);
        }
        // Names are unique.
        let mut names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn ood_differs_from_source() {
        let f = family();
        let source = f.source_task(16, 8).unwrap();
        let ood = f.ood_dataset(16).unwrap();
        assert_eq!(ood.len(), 16);
        assert_ne!(
            source.train.images().data()[..64],
            ood.images().data()[..64]
        );
    }

    #[test]
    #[should_panic(expected = "downstream classes")]
    fn too_many_classes_panics() {
        let f = family();
        let spec = DownstreamSpec {
            name: "bad".to_string(),
            gap: 0.5,
            num_classes: 99,
            train_size: 4,
            test_size: 4,
        };
        let _ = f.downstream_task(&spec);
    }

    #[test]
    fn analog_constructors() {
        let c10 = DownstreamSpec::c10_analog(12, 100, 50);
        assert_eq!(c10.num_classes, 6);
        let c100 = DownstreamSpec::c100_analog(12, 100, 50);
        assert_eq!(c100.num_classes, 12);
        assert!(c100.gap > c10.gap);
    }

    #[test]
    fn images_are_finite_and_varied() {
        let f = family();
        let task = f.source_task(8, 4).unwrap();
        assert!(task.train.images().all_finite());
        let imgs = task.train.images();
        // Different samples differ (noise + jitter).
        let a = &imgs.data()[..192];
        let b = &imgs.data()[192..384];
        assert_ne!(a, b);
    }
}
