//! Double-buffered batch loading for the training loop.
//!
//! [`PrefetchLoader`] owns the epoch iteration protocol that
//! `rt-transfer`'s training loop consumes: shuffle once per epoch, then
//! hand out minibatches whose **composition is a pure function of the
//! caller's RNG state** — bit-identical to the legacy
//! [`Dataset::shuffled_batches`] path at any `RT_THREADS`, with or without
//! prefetch. While the consumer trains on batch *k*, the loader stages the
//! gather of batch *k + 1* on the `rt-par` staging thread
//! ([`rt_par::stage`]), hiding the memory-bound copy behind compute.
//!
//! # Determinism contract
//!
//! * `begin_epoch` consumes the RNG exactly like `shuffled_batches` did
//!   (one Fisher–Yates pass over a `0..len` permutation), so downstream
//!   draws (PGD restarts, Gaussian noise) see an unchanged stream.
//! * Chunk boundaries are `order.chunks(batch_size)` — identical batches,
//!   identical order, identical bytes, whether a batch was gathered inline
//!   or on the staging thread.
//! * Prefetch (`RT_PREFETCH`, default on; [`PrefetchLoader::set_prefetch`])
//!   therefore only trades latency, never results.
//!
//! # Allocation discipline
//!
//! Image buffers are leased from `rt_tensor::pool` **on the consumer
//! thread** (the pool is thread-sharded; leasing at staging-submission
//! time keeps take/put on one shard), and index/label vectors cycle
//! through small free lists — a steady-state epoch performs no fresh
//! buffer allocations once the pool is warm. Callers opt in by returning
//! finished batches via [`PrefetchLoader::release`].
//!
//! # Supervision
//!
//! The loader never *enqueues* staging work after the ambient
//! [`rt_par::CancelToken`] trips; an epoch already in flight keeps serving
//! batches inline so the training loop's own batch-boundary check (which
//! owns cancellation semantics) decides how to stop.

use crate::dataset::gather_raw;
use crate::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use rt_tensor::{pool, Tensor};
use std::sync::atomic::{AtomicU8, Ordering};

/// One minibatch: gathered images, labels, and the source sample indices
/// (the per-sample keys the activation cache layers on).
#[derive(Debug)]
pub struct Batch {
    images: Tensor,
    labels: Vec<usize>,
    indices: Vec<usize>,
}

impl Batch {
    /// The gathered images, shape `[B, C, H, W]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels, one per gathered sample.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The dataset indices this batch was gathered from, in batch order.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty (never produced by the loader).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// Process-wide default for prefetching: `0`/`1` = resolved, `2` = unset.
static PREFETCH_DEFAULT: AtomicU8 = AtomicU8::new(2);

/// The process-wide prefetch default: `true` unless `RT_PREFETCH` is set
/// to `0`/`false`/`off` (read once and cached). Tests and benchmarks
/// should use [`set_prefetch_default`] instead of mutating the
/// environment.
pub fn prefetch_default() -> bool {
    match PREFETCH_DEFAULT.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on = !matches!(
                std::env::var("RT_PREFETCH").as_deref(),
                Ok("0") | Ok("false") | Ok("off")
            );
            PREFETCH_DEFAULT.store(on as u8, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the process-wide prefetch default (numerics-neutral: the
/// loader is bit-identical either way — this only trades latency).
pub fn set_prefetch_default(on: bool) {
    PREFETCH_DEFAULT.store(on as u8, Ordering::Relaxed);
}

/// Double-buffered minibatch loader; see the module docs for the
/// determinism, allocation, and supervision contracts.
pub struct PrefetchLoader {
    data: Dataset,
    sample_len: usize,
    sample_shape: [usize; 3],
    prefetch: bool,
    batch_size: usize,
    /// Persistent epoch permutation, reshuffled in place every
    /// [`PrefetchLoader::begin_epoch`] — never reallocated.
    order: Vec<usize>,
    /// Next un-dispensed position in `order` (batches at or past it have
    /// been neither staged nor served).
    cursor: usize,
    pending: Option<rt_par::Staged<Batch>>,
    free_labels: Vec<Vec<usize>>,
    free_indices: Vec<Vec<usize>>,
    wait_hist: rt_obs::Histogram,
}

impl std::fmt::Debug for PrefetchLoader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PrefetchLoader")
            .field("samples", &self.data.len())
            .field("batch_size", &self.batch_size)
            .field("prefetch", &self.prefetch)
            .finish()
    }
}

impl PrefetchLoader {
    /// Creates a loader over `data` (an O(1) shared-storage clone), with
    /// prefetching set from [`prefetch_default`].
    pub fn new(data: &Dataset) -> Self {
        let sample_shape = data.sample_shape();
        PrefetchLoader {
            data: data.clone(),
            sample_len: sample_shape.iter().product(),
            sample_shape,
            prefetch: prefetch_default(),
            batch_size: 0,
            order: Vec::new(),
            cursor: 0,
            pending: None,
            free_labels: Vec::new(),
            free_indices: Vec::new(),
            wait_hist: rt_obs::histogram("data.prefetch_hit_ms"),
        }
    }

    /// Forces prefetching on or off for this loader (numerics-neutral).
    pub fn set_prefetch(&mut self, on: bool) {
        self.prefetch = on;
    }

    /// Whether this loader stages batches asynchronously.
    pub fn prefetch(&self) -> bool {
        self.prefetch
    }

    /// The dataset this loader serves.
    pub fn dataset(&self) -> &Dataset {
        &self.data
    }

    /// Starts a new epoch: reshuffles the persistent permutation with
    /// `rng` (consuming it exactly like [`Dataset::shuffled_batches`])
    /// and, with prefetch on, stages the first batch immediately.
    ///
    /// Any batch still staged from an abandoned epoch (divergence bail,
    /// cancellation) is drained and its buffers recycled first.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn begin_epoch<R: Rng>(&mut self, batch_size: usize, rng: &mut R) {
        assert!(batch_size > 0, "batch size must be positive");
        if let Some(staged) = self.pending.take() {
            let stale = staged.wait();
            self.release(stale);
        }
        self.batch_size = batch_size;
        self.order.clear();
        self.order.extend(0..self.data.len());
        self.order.shuffle(rng);
        self.cursor = 0;
        if self.prefetch {
            self.stage_next();
        }
    }

    /// The next batch of the current epoch, or `None` when exhausted.
    pub fn next_batch(&mut self) -> Option<Batch> {
        if !self.prefetch {
            if self.cursor >= self.order.len() {
                return None;
            }
            return Some(self.gather_chunk());
        }
        let batch = match self.pending.take() {
            Some(staged) => {
                let t0 = rt_obs::Stopwatch::start_if(self.wait_hist.is_active());
                let batch = staged.wait();
                if let Some(t0) = t0 {
                    self.wait_hist.observe(t0.elapsed_ms());
                }
                batch
            }
            // Staging was suppressed (tripped ambient token) but the epoch
            // is not exhausted: serve inline so the training loop's
            // batch-boundary check owns the stop decision.
            None if self.cursor < self.order.len() => self.gather_chunk(),
            None => return None,
        };
        self.stage_next();
        Some(batch)
    }

    /// Returns a finished batch's buffers to the loader: the image buffer
    /// goes back to the `rt_tensor` pool and the index/label vectors to
    /// the free lists, keeping the steady-state epoch allocation-free.
    pub fn release(&mut self, batch: Batch) {
        let Batch {
            images,
            mut labels,
            mut indices,
        } = batch;
        pool::put(images.into_vec());
        labels.clear();
        indices.clear();
        self.free_labels.push(labels);
        self.free_indices.push(indices);
    }

    /// Pops (or creates) a recycled index/label vector pair.
    fn lease_vecs(&mut self) -> (Vec<usize>, Vec<usize>) {
        (
            self.free_indices.pop().unwrap_or_default(),
            self.free_labels.pop().unwrap_or_default(),
        )
    }

    /// Claims the next chunk of `order`, advancing the cursor.
    fn claim_chunk(&mut self) -> (Vec<usize>, Vec<usize>, usize) {
        let end = (self.cursor + self.batch_size).min(self.order.len());
        let (mut indices, labels) = self.lease_vecs();
        indices.extend_from_slice(&self.order[self.cursor..end]);
        let n = end - self.cursor;
        self.cursor = end;
        (indices, labels, n)
    }

    /// Gathers the next chunk inline on the calling thread.
    fn gather_chunk(&mut self) -> Batch {
        let (indices, mut labels, n) = self.claim_chunk();
        let mut buf = pool::take(n * self.sample_len);
        gather_raw(
            self.data.images(),
            self.data.labels(),
            &indices,
            self.sample_len,
            &mut buf,
            &mut labels,
        );
        let [c, h, w] = self.sample_shape;
        let images =
            Tensor::from_vec(vec![n, c, h, w], buf).expect("gathered batch shape is consistent");
        Batch {
            images,
            labels,
            indices,
        }
    }

    /// Stages the gather of the next chunk on the `rt-par` staging
    /// thread. The image buffer is leased *here*, on the consumer thread,
    /// so the pool's thread-sharded take/put pairing stays local; the
    /// closure only fills it. No-op when the epoch is exhausted or the
    /// ambient supervision token has tripped.
    fn stage_next(&mut self) {
        debug_assert!(self.pending.is_none(), "one staged batch at a time");
        if self.cursor >= self.order.len() || rt_par::current_cancel().is_cancelled() {
            return;
        }
        let (indices, labels, n) = self.claim_chunk();
        let buf = pool::take(n * self.sample_len);
        let (images, all_labels) = self.data.shared_parts();
        let sample_len = self.sample_len;
        let [c, h, w] = self.sample_shape;
        self.pending = Some(rt_par::stage(move || {
            let mut buf = buf;
            let mut labels = labels;
            gather_raw(&images, &all_labels, &indices, sample_len, &mut buf, &mut labels);
            let images = Tensor::from_vec(vec![n, c, h, w], buf)
                .expect("gathered batch shape is consistent");
            Batch {
                images,
                labels,
                indices,
            }
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_tensor::rng::rng_from_seed;

    fn dataset(n: usize) -> Dataset {
        let images = Tensor::from_fn(&[n, 2, 3, 3], |i| i as f32 * 0.25);
        let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
        Dataset::new(images, labels, 4)
    }

    /// Drains one epoch through the loader, releasing every batch, and
    /// returns owned copies for comparison.
    fn drain_epoch(
        loader: &mut PrefetchLoader,
        batch: usize,
        seed: u64,
    ) -> Vec<(Vec<f32>, Vec<usize>)> {
        let mut rng = rng_from_seed(seed);
        loader.begin_epoch(batch, &mut rng);
        let mut out = Vec::new();
        while let Some(b) = loader.next_batch() {
            out.push((b.images().data().to_vec(), b.labels().to_vec()));
            loader.release(b);
        }
        out
    }

    #[test]
    fn loader_is_bit_identical_to_shuffled_batches() {
        let data = dataset(23);
        let reference = data.shuffled_batches(5, &mut rng_from_seed(7));
        for prefetch in [false, true] {
            let mut loader = PrefetchLoader::new(&data);
            loader.set_prefetch(prefetch);
            let got = drain_epoch(&mut loader, 5, 7);
            assert_eq!(got.len(), reference.len(), "prefetch={prefetch}");
            for (g, r) in got.iter().zip(&reference) {
                assert_eq!(g.0, r.0.data(), "prefetch={prefetch}");
                assert_eq!(g.1, r.1, "prefetch={prefetch}");
            }
        }
    }

    #[test]
    fn rng_consumption_matches_the_legacy_path() {
        // After one epoch, the caller's RNG must be in exactly the state
        // shuffled_batches would have left it in — downstream draws (PGD,
        // noise) depend on it.
        use rand::Rng as _;
        let data = dataset(17);
        let mut legacy_rng = rng_from_seed(3);
        let _ = data.shuffled_batches(4, &mut legacy_rng);
        let mut loader = PrefetchLoader::new(&data);
        let mut loader_rng = rng_from_seed(3);
        loader.begin_epoch(4, &mut loader_rng);
        assert_eq!(legacy_rng.gen::<u64>(), loader_rng.gen::<u64>());
    }

    #[test]
    fn batches_carry_their_source_indices() {
        let data = dataset(10);
        let mut loader = PrefetchLoader::new(&data);
        let mut rng = rng_from_seed(1);
        loader.begin_epoch(3, &mut rng);
        let mut seen: Vec<usize> = Vec::new();
        while let Some(b) = loader.next_batch() {
            // Index i must point at the sample whose first pixel is
            // i * sample_len * 0.25 (from_fn fill above).
            for (k, &i) in b.indices().iter().enumerate() {
                assert_eq!(b.images().data()[k * 18], (i * 18) as f32 * 0.25);
            }
            seen.extend_from_slice(b.indices());
            loader.release(b);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn steady_state_epochs_reuse_pool_buffers() {
        rt_par::set_threads(1);
        pool::set_enabled(true);
        let data = dataset(13);
        let mut loader = PrefetchLoader::new(&data);
        // Warm epoch caches both buffer lengths (full + tail chunk).
        let _ = drain_epoch(&mut loader, 4, 0);
        pool::reset_thread_stats();
        let _ = drain_epoch(&mut loader, 4, 1);
        let _ = drain_epoch(&mut loader, 4, 2);
        let stats = pool::thread_stats();
        assert!(stats.hits > 0, "batch buffers must come from the pool");
        assert_eq!(
            stats.misses, 0,
            "steady-state epochs allocated fresh batch buffers"
        );
    }

    #[test]
    fn tripped_ambient_token_suppresses_staging_but_not_batches() {
        let data = dataset(9);
        let scope = rt_par::CancelScope::new();
        scope.trip();
        let _ambient = rt_par::with_cancel(scope.token());
        let mut loader = PrefetchLoader::new(&data);
        loader.set_prefetch(true);
        let got = drain_epoch(&mut loader, 4, 5);
        // The epoch still serves every batch (inline) — stopping is the
        // training loop's decision, not the loader's.
        assert_eq!(got.len(), 3);
        let reference = data.shuffled_batches(4, &mut rng_from_seed(5));
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(g.0, r.0.data());
        }
    }

    #[test]
    fn abandoned_epoch_is_drained_on_the_next_begin() {
        let data = dataset(12);
        let mut loader = PrefetchLoader::new(&data);
        loader.set_prefetch(true);
        let mut rng = rng_from_seed(2);
        loader.begin_epoch(4, &mut rng);
        let first = loader.next_batch().unwrap();
        loader.release(first);
        // Abandon mid-epoch (a staged batch is in flight) and start over.
        let got = drain_epoch(&mut loader, 4, 6);
        assert_eq!(got.len(), 3);
        let reference = data.shuffled_batches(4, &mut rng_from_seed(6));
        for (g, r) in got.iter().zip(&reference) {
            assert_eq!(g.0, r.0.data());
            assert_eq!(g.1, r.1);
        }
    }
}
