use crate::{NnError, Result};
use rt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Role of a parameter inside its layer. Pruning only ever touches
/// [`ParamKind::Weight`]; biases and BatchNorm affine parameters are left
/// dense, matching the paper's protocol (and common practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// A prunable weight matrix/kernel.
    Weight,
    /// A bias vector.
    Bias,
    /// BatchNorm scale (γ).
    BnScale,
    /// BatchNorm shift (β).
    BnShift,
}

/// A trainable tensor with everything the training loop needs co-located:
/// value, gradient, SGD momentum buffer, an optional pruning mask, and the
/// frozen-weights + learnable-scores pair used by LMP.
///
/// # Invariants
///
/// * `grad`, `velocity`, and (when present) `mask`, `frozen`, `scores` all
///   share `data`'s shape.
/// * If `mask` is `Some`, every element of `data` at a zero mask position is
///   zero after [`Param::apply_mask`]; the optimizer re-establishes this
///   after each step.
#[derive(Debug, Clone)]
pub struct Param {
    /// Stable human-readable name (e.g. `"stage1.block0.conv1.weight"`).
    pub name: String,
    /// The parameter value.
    pub data: Tensor,
    /// Accumulated gradient (same shape as `data`).
    pub grad: Tensor,
    /// SGD momentum buffer (same shape as `data`).
    pub velocity: Tensor,
    /// Binary pruning mask (`1.0` = keep, `0.0` = pruned). `None` = dense.
    pub mask: Option<Tensor>,
    /// Frozen copy of the pretrained weights, used by LMP where the weights
    /// are never updated but the mask is learned on top of them.
    pub frozen: Option<Tensor>,
    /// Learnable mask scores for LMP (updated via straight-through
    /// estimation); same shape as `data`.
    pub scores: Option<Tensor>,
    /// What role this parameter plays (weight/bias/BN affine).
    pub kind: ParamKind,
    /// Whether the optimizer updates `data`. LMP freezes weights by setting
    /// this to `false` while learning `scores`.
    pub trainable: bool,
}

impl Param {
    /// Creates a trainable parameter with zeroed gradient and momentum.
    pub fn new(name: impl Into<String>, data: Tensor, kind: ParamKind) -> Self {
        let shape = data.shape().to_vec();
        Param {
            name: name.into(),
            grad: Tensor::zeros(&shape),
            velocity: Tensor::zeros(&shape),
            data,
            mask: None,
            frozen: None,
            scores: None,
            kind,
            trainable: true,
        }
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Installs a pruning mask and immediately applies it to the data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateDictMismatch`] if the mask shape differs from
    /// the parameter shape.
    pub fn set_mask(&mut self, mask: Tensor) -> Result<()> {
        if mask.shape() != self.data.shape() {
            return Err(NnError::StateDictMismatch {
                detail: format!(
                    "mask shape {:?} does not match param `{}` shape {:?}",
                    mask.shape(),
                    self.name,
                    self.data.shape()
                ),
            });
        }
        self.mask = Some(mask);
        self.apply_mask();
        Ok(())
    }

    /// Removes the mask (the zeroed weights stay zero until trained again).
    pub fn clear_mask(&mut self) {
        self.mask = None;
    }

    /// Multiplies `data` by the mask, forcing pruned weights to exactly zero.
    /// A no-op for dense parameters.
    pub fn apply_mask(&mut self) {
        if let Some(mask) = &self.mask {
            for (d, &m) in self.data.data_mut().iter_mut().zip(mask.data()) {
                *d *= m;
            }
        }
    }

    /// Multiplies `grad` by the mask so pruned weights receive no update.
    /// A no-op for dense parameters.
    pub fn mask_grad(&mut self) {
        if let Some(mask) = &self.mask {
            for (g, &m) in self.grad.data_mut().iter_mut().zip(mask.data()) {
                *g *= m;
            }
        }
    }

    /// Fraction of weights removed by the mask (`0.0` for dense parameters).
    pub fn sparsity(&self) -> f64 {
        match &self.mask {
            None => 0.0,
            Some(mask) => {
                if mask.is_empty() {
                    0.0
                } else {
                    mask.count_zeros() as f64 / mask.len() as f64
                }
            }
        }
    }

    /// Number of weights kept by the mask (all of them for dense params).
    pub fn active_count(&self) -> usize {
        match &self.mask {
            None => self.data.len(),
            Some(mask) => mask.len() - mask.count_zeros(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param() -> Param {
        Param::new(
            "w",
            Tensor::from_vec(vec![2, 2], vec![1.0, -2.0, 3.0, -4.0]).unwrap(),
            ParamKind::Weight,
        )
    }

    #[test]
    fn new_param_has_zero_grad_and_velocity() {
        let p = param();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.velocity.sum(), 0.0);
        assert_eq!(p.grad.shape(), p.data.shape());
        assert!(p.trainable);
        assert_eq!(p.sparsity(), 0.0);
    }

    #[test]
    fn mask_application_zeroes_weights() {
        let mut p = param();
        let mask = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        p.set_mask(mask).unwrap();
        assert_eq!(p.data.data(), &[1.0, 0.0, 0.0, -4.0]);
        assert_eq!(p.sparsity(), 0.5);
        assert_eq!(p.active_count(), 2);
    }

    #[test]
    fn mask_shape_is_validated() {
        let mut p = param();
        assert!(p.set_mask(Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn mask_grad_blocks_pruned_updates() {
        let mut p = param();
        p.set_mask(Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 1.0, 0.0]).unwrap())
            .unwrap();
        p.grad.fill(5.0);
        p.mask_grad();
        assert_eq!(p.grad.data(), &[5.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = param();
        p.grad.fill(2.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn clear_mask_restores_dense_accounting() {
        let mut p = param();
        p.set_mask(Tensor::zeros(&[2, 2])).unwrap();
        assert_eq!(p.active_count(), 0);
        p.clear_mask();
        assert_eq!(p.active_count(), 4);
        assert_eq!(p.sparsity(), 0.0);
    }
}
