use crate::{NnError, Result};
use rt_sparse::{build_plan, BitMask, MatrixDims, SparsePlan};
use rt_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Role of a parameter inside its layer. Pruning only ever touches
/// [`ParamKind::Weight`]; biases and BatchNorm affine parameters are left
/// dense, matching the paper's protocol (and common practice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// A prunable weight matrix/kernel.
    Weight,
    /// A bias vector.
    Bias,
    /// BatchNorm scale (γ).
    BnScale,
    /// BatchNorm shift (β).
    BnShift,
}

/// A trainable tensor with everything the training loop needs co-located:
/// value, gradient, SGD momentum buffer, an optional pruning mask, and the
/// frozen-weights + learnable-scores pair used by LMP.
///
/// # Invariants
///
/// * `grad`, `velocity`, and (when present) `mask`, `frozen`, `scores` all
///   share `data`'s shape.
/// * If `mask` is `Some`, every element of `data`, `grad`, and `velocity`
///   at a zero mask position is exactly `+0.0` after [`Param::set_mask`];
///   [`Param::apply_mask`] / [`Param::mask_grad`] and the optimizer
///   re-establish this after each step. Masking is *assignment* to `0.0`,
///   never multiplication (multiplying a negative value by `0.0` yields
///   `-0.0`, which would break bit-level equivalence with the sparse
///   execution kernels).
/// * If `plan` is `Some`, it was compiled from the current `mask` and
///   shares its support exactly.
#[derive(Debug, Clone)]
pub struct Param {
    /// Stable human-readable name (e.g. `"stage1.block0.conv1.weight"`).
    pub name: String,
    /// The parameter value.
    pub data: Tensor,
    /// Accumulated gradient (same shape as `data`).
    pub grad: Tensor,
    /// SGD momentum buffer (same shape as `data`).
    pub velocity: Tensor,
    /// Binary pruning mask (`1.0` = keep, `0.0` = pruned). `None` = dense.
    pub mask: Option<Tensor>,
    /// Sparse execution plan compiled from `mask` by [`Param::set_mask`]
    /// for prunable weight matrices/kernels. `None` for dense parameters,
    /// non-weight parameters, and shapes the sparse engine does not cover.
    /// Shared via `Arc` so layers can hold a cheap reference across calls.
    pub plan: Option<Arc<SparsePlan>>,
    /// Frozen copy of the pretrained weights, used by LMP where the weights
    /// are never updated but the mask is learned on top of them.
    pub frozen: Option<Tensor>,
    /// Learnable mask scores for LMP (updated via straight-through
    /// estimation); same shape as `data`.
    pub scores: Option<Tensor>,
    /// What role this parameter plays (weight/bias/BN affine).
    pub kind: ParamKind,
    /// Whether the optimizer updates `data`. LMP freezes weights by setting
    /// this to `false` while learning `scores`.
    pub trainable: bool,
}

impl Param {
    /// Creates a trainable parameter with zeroed gradient and momentum.
    pub fn new(name: impl Into<String>, data: Tensor, kind: ParamKind) -> Self {
        let shape = data.shape().to_vec();
        Param {
            name: name.into(),
            grad: Tensor::zeros(&shape),
            velocity: Tensor::zeros(&shape),
            data,
            mask: None,
            plan: None,
            frozen: None,
            scores: None,
            kind,
            trainable: true,
        }
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Installs a pruning mask, immediately applies it to the data,
    /// gradient, and momentum buffers, and — for prunable weight shapes —
    /// compiles a [`SparsePlan`] the layers consult at execution time.
    ///
    /// Plan compilation happens **once here**, not per forward call: conv
    /// and linear layers only read the finished plan, so installing a mask
    /// is the single point where sparsity analysis runs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateDictMismatch`] if the mask shape differs from
    /// the parameter shape.
    pub fn set_mask(&mut self, mask: Tensor) -> Result<()> {
        if mask.shape() != self.data.shape() {
            return Err(NnError::StateDictMismatch {
                detail: format!(
                    "mask shape {:?} does not match param `{}` shape {:?}",
                    mask.shape(),
                    self.name,
                    self.data.shape()
                ),
            });
        }
        let bits = BitMask::from_dense(mask.data());
        // Establish the invariant that *all* per-weight state is exactly
        // +0.0 at pruned positions, so sparse kernels that never touch dead
        // entries agree bit-for-bit with masked-dense execution.
        bits.zero_pruned(self.data.data_mut());
        bits.zero_pruned(self.grad.data_mut());
        bits.zero_pruned(self.velocity.data_mut());
        self.plan = self.plan_dims().map(|dims| {
            let plan = build_plan(&bits, dims);
            if rt_obs::metrics_enabled() {
                rt_obs::counter(match plan.kind {
                    rt_sparse::PlanKind::Dense => "sparse.plan.dense",
                    rt_sparse::PlanKind::Compact => "sparse.plan.compact",
                    rt_sparse::PlanKind::Csr => "sparse.plan.csr",
                })
                .inc();
                rt_obs::histogram("sparse.density").observe(plan.density());
            }
            Arc::new(plan)
        });
        self.mask = Some(mask);
        Ok(())
    }

    /// The sparse-engine matrix view of this parameter, if it has one:
    /// rank-2 weights map to a plain `[out, in]` matrix, rank-4 conv
    /// kernels to a `[out_channels, in_channels·k·k]` matrix whose columns
    /// group into `k·k`-wide blocks (one block per input channel, matching
    /// the `im2col` lowering). Biases, BN affine parameters, and other
    /// ranks are not planned.
    fn plan_dims(&self) -> Option<MatrixDims> {
        if self.kind != ParamKind::Weight {
            return None;
        }
        match self.data.shape() {
            &[o, i] => Some(MatrixDims::linear(o, i)),
            &[o, c, kh, kw] => Some(MatrixDims::grouped(o, c * kh * kw, kh * kw)),
            _ => None,
        }
    }

    /// Removes the mask and its compiled plan (the zeroed weights stay
    /// zero until trained again).
    pub fn clear_mask(&mut self) {
        self.mask = None;
        self.plan = None;
    }

    /// Forces pruned weights to exactly `+0.0` (assignment, not
    /// multiplication). A no-op for dense parameters.
    pub fn apply_mask(&mut self) {
        if let Some(plan) = &self.plan {
            plan.bits.zero_pruned(self.data.data_mut());
        } else if let Some(mask) = &self.mask {
            for (d, &m) in self.data.data_mut().iter_mut().zip(mask.data()) {
                if m == 0.0 {
                    *d = 0.0;
                }
            }
        }
    }

    /// Forces pruned gradient entries to exactly `+0.0` so pruned weights
    /// receive no update. A no-op for dense parameters.
    pub fn mask_grad(&mut self) {
        if let Some(plan) = &self.plan {
            plan.bits.zero_pruned(self.grad.data_mut());
        } else if let Some(mask) = &self.mask {
            for (g, &m) in self.grad.data_mut().iter_mut().zip(mask.data()) {
                if m == 0.0 {
                    *g = 0.0;
                }
            }
        }
    }

    /// Fraction of weights removed by the mask (`0.0` for dense parameters).
    pub fn sparsity(&self) -> f64 {
        match &self.mask {
            None => 0.0,
            Some(mask) => {
                if mask.is_empty() {
                    0.0
                } else {
                    mask.count_zeros() as f64 / mask.len() as f64
                }
            }
        }
    }

    /// Number of weights kept by the mask (all of them for dense params).
    pub fn active_count(&self) -> usize {
        match &self.mask {
            None => self.data.len(),
            Some(mask) => mask.len() - mask.count_zeros(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param() -> Param {
        Param::new(
            "w",
            Tensor::from_vec(vec![2, 2], vec![1.0, -2.0, 3.0, -4.0]).unwrap(),
            ParamKind::Weight,
        )
    }

    #[test]
    fn new_param_has_zero_grad_and_velocity() {
        let p = param();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.velocity.sum(), 0.0);
        assert_eq!(p.grad.shape(), p.data.shape());
        assert!(p.trainable);
        assert_eq!(p.sparsity(), 0.0);
    }

    #[test]
    fn mask_application_zeroes_weights() {
        let mut p = param();
        let mask = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        p.set_mask(mask).unwrap();
        assert_eq!(p.data.data(), &[1.0, 0.0, 0.0, -4.0]);
        assert_eq!(p.sparsity(), 0.5);
        assert_eq!(p.active_count(), 2);
    }

    #[test]
    fn mask_shape_is_validated() {
        let mut p = param();
        assert!(p.set_mask(Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn mask_grad_blocks_pruned_updates() {
        let mut p = param();
        p.set_mask(Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 1.0, 0.0]).unwrap())
            .unwrap();
        p.grad.fill(5.0);
        p.mask_grad();
        assert_eq!(p.grad.data(), &[5.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn set_mask_compiles_a_plan_and_zeroes_all_state() {
        let mut p = param();
        p.grad.fill(3.0);
        p.velocity.fill(-2.0);
        let mask = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 1.0, 0.0]).unwrap();
        p.set_mask(mask).unwrap();
        let plan = p.plan.as_ref().expect("weight params get a plan");
        assert_eq!(plan.nnz, 2);
        assert_eq!(plan.dims.rows, 2);
        assert_eq!(plan.dims.cols, 2);
        // data, grad, AND velocity are exactly +0.0 at pruned positions.
        for buf in [p.data.data(), p.grad.data(), p.velocity.data()] {
            assert_eq!(buf[1].to_bits(), 0);
            assert_eq!(buf[3].to_bits(), 0);
        }
        // Live entries are untouched.
        assert_eq!(p.grad.data()[0], 3.0);
        assert_eq!(p.velocity.data()[2], -2.0);
        p.clear_mask();
        assert!(p.plan.is_none());
    }

    #[test]
    fn masking_assigns_positive_zero_never_negative() {
        let mut p = param(); // data = [1, -2, 3, -4]
        p.set_mask(Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 1.0, 0.0]).unwrap())
            .unwrap();
        // -2.0 * 0.0 would be -0.0; assignment must give +0.0.
        assert_eq!(p.data.data()[1].to_bits(), 0);
        assert_eq!(p.data.data()[3].to_bits(), 0);
        p.grad.fill(-5.0);
        p.mask_grad();
        assert_eq!(p.grad.data()[1].to_bits(), 0);
        assert_eq!(p.grad.data(), &[-5.0, 0.0, -5.0, 0.0]);
    }

    #[test]
    fn non_weight_params_get_no_plan() {
        let mut b = Param::new(
            "b",
            Tensor::from_vec(vec![4], vec![1.0, 2.0, 3.0, 4.0]).unwrap(),
            ParamKind::Bias,
        );
        b.set_mask(Tensor::ones(&[4])).unwrap();
        assert!(b.plan.is_none());
        // Masking still works through the dense fallback path.
        let mut w1 = Param::new("w1", Tensor::ones(&[4]), ParamKind::Weight);
        w1.set_mask(Tensor::from_vec(vec![4], vec![1.0, 0.0, 1.0, 0.0]).unwrap())
            .unwrap();
        assert!(w1.plan.is_none(), "rank-1 weights are not planned");
        assert_eq!(w1.data.data(), &[1.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn conv_weights_plan_with_kernel_col_groups() {
        let mut p = Param::new("conv", Tensor::ones(&[4, 3, 3, 3]), ParamKind::Weight);
        let mut mask = Tensor::ones(&[4, 3, 3, 3]);
        // Prune input channel 1 everywhere (channel-structured).
        for o in 0..4 {
            for k in 0..9 {
                mask.data_mut()[o * 27 + 9 + k] = 0.0;
            }
        }
        p.set_mask(mask).unwrap();
        let plan = p.plan.as_ref().unwrap();
        assert_eq!(plan.dims.rows, 4);
        assert_eq!(plan.dims.cols, 27);
        assert_eq!(plan.dims.col_group, 9);
        assert_eq!(plan.nnz, 4 * 18);
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = param();
        p.grad.fill(2.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn clear_mask_restores_dense_accounting() {
        let mut p = param();
        p.set_mask(Tensor::zeros(&[2, 2])).unwrap();
        assert_eq!(p.active_count(), 0);
        p.clear_mask();
        assert_eq!(p.active_count(), 4);
        assert_eq!(p.sparsity(), 0.0);
    }
}
