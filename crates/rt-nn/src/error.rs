use rt_tensor::TensorError;
use std::fmt;

/// Error type for layer, loss, and optimizer operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor kernel failed.
    Tensor(TensorError),
    /// `backward` was called before any `forward` populated the caches.
    BackwardBeforeForward {
        /// Name of the layer that was misused.
        layer: &'static str,
    },
    /// A label index was outside the number of classes.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes in the logits.
        classes: usize,
    },
    /// Batch sizes of two inputs to a loss disagreed.
    BatchMismatch {
        /// Batch size of the predictions.
        predictions: usize,
        /// Number of targets provided.
        targets: usize,
    },
    /// A state-dict could not be loaded into the model.
    StateDictMismatch {
        /// Human-readable description of the incompatibility.
        detail: String,
    },
    /// A configuration value was invalid (e.g. a negative learning rate).
    InvalidConfig {
        /// Human-readable description of the invalid value.
        detail: String,
    },
    /// A checkpoint payload failed integrity validation: checksum mismatch,
    /// truncated/garbled bytes, or non-finite parameter values.
    CorruptCheckpoint {
        /// Human-readable description of what failed validation.
        detail: String,
    },
    /// Training produced a non-finite loss (NaN/Inf) — the optimizer state
    /// can no longer be trusted past this point.
    Diverged {
        /// Epoch index (0-based) at which the loss went non-finite.
        epoch: usize,
        /// Batch index (0-based) within the epoch.
        batch: usize,
    },
    /// The supervision token was tripped (typically by the experiment
    /// runner's wall-clock watchdog) and training stopped cooperatively at
    /// a batch boundary. Unlike [`NnError::Diverged`], no state is
    /// suspect — the work simply ran out of time.
    DeadlineExceeded {
        /// Epoch index (0-based) at which cancellation was observed.
        epoch: usize,
        /// Batch index (0-based) within the epoch.
        batch: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "`{layer}` backward called before forward")
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::BatchMismatch {
                predictions,
                targets,
            } => write!(
                f,
                "batch mismatch: {predictions} predictions vs {targets} targets"
            ),
            NnError::StateDictMismatch { detail } => {
                write!(f, "state dict mismatch: {detail}")
            }
            NnError::InvalidConfig { detail } => write!(f, "invalid config: {detail}"),
            NnError::CorruptCheckpoint { detail } => {
                write!(f, "corrupt checkpoint: {detail}")
            }
            NnError::Diverged { epoch, batch } => {
                write!(
                    f,
                    "training diverged: non-finite loss at epoch {epoch}, batch {batch}"
                )
            }
            NnError::DeadlineExceeded { epoch, batch } => {
                write!(
                    f,
                    "deadline exceeded: cancellation observed at epoch {epoch}, batch {batch}"
                )
            }
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error_with_source() {
        use std::error::Error as _;
        let e: NnError = TensorError::EmptyTensor { op: "max" }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("max"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
