use rt_tensor::TensorError;
use std::fmt;

/// The workspace-unified error: every layer's failure converges here so
/// drivers and the serving stack propagate with `?` instead of
/// stringifying at each boundary.
///
/// Low layers keep their precise local types ([`TensorError`],
/// [`NnError`]) — this enum is the *top* of the funnel, hosted in `rt-nn`
/// because it is the lowest crate every consumer already depends on.
/// Crates above `rt-nn` in the graph (e.g. the experiment runner) join
/// the funnel through the [`RtError::Layer`] variant: they box their
/// local error and provide the `From` impl on their side, which keeps the
/// crate graph acyclic while still letting callers downcast
/// (`source.downcast_ref::<TheirError>()`) when they need structure.
#[derive(Debug)]
#[non_exhaustive]
pub enum RtError {
    /// A tensor kernel failed.
    Tensor(TensorError),
    /// A layer/loss/optimizer/checkpoint operation failed.
    Nn(NnError),
    /// File-system failure (journals, checkpoints, result records).
    Io(std::io::Error),
    /// A request was refused at an admission boundary (serving
    /// backpressure) — see [`Rejected`] for the structured reason.
    Rejected(Rejected),
    /// A request's wall-clock budget expired before its work completed.
    Deadline {
        /// The budget that was exceeded, in milliseconds.
        budget_ms: u64,
        /// Where in the pipeline the expiry was observed.
        stage: &'static str,
    },
    /// An error from a crate above `rt-nn` in the dependency graph,
    /// boxed. The originating crate supplies the `From` impl; consumers
    /// needing structure can downcast `source`.
    Layer {
        /// Short layer tag (`"runner"`, …) for display and routing.
        layer: &'static str,
        /// The boxed original error.
        source: Box<dyn std::error::Error + Send + Sync + 'static>,
    },
}

impl fmt::Display for RtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RtError::Tensor(e) => write!(f, "tensor: {e}"),
            RtError::Nn(e) => write!(f, "nn: {e}"),
            RtError::Io(e) => write!(f, "io: {e}"),
            RtError::Rejected(r) => write!(f, "rejected: {r}"),
            RtError::Deadline { budget_ms, stage } => {
                write!(f, "deadline: {budget_ms} ms budget expired during {stage}")
            }
            RtError::Layer { layer, source } => write!(f, "{layer}: {source}"),
        }
    }
}

impl std::error::Error for RtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RtError::Tensor(e) => Some(e),
            RtError::Nn(e) => Some(e),
            RtError::Io(e) => Some(e),
            RtError::Rejected(r) => Some(r),
            RtError::Deadline { .. } => None,
            RtError::Layer { source, .. } => Some(source.as_ref()),
        }
    }
}

impl From<TensorError> for RtError {
    fn from(e: TensorError) -> Self {
        RtError::Tensor(e)
    }
}

impl From<NnError> for RtError {
    fn from(e: NnError) -> Self {
        RtError::Nn(e)
    }
}

impl From<std::io::Error> for RtError {
    fn from(e: std::io::Error) -> Self {
        RtError::Io(e)
    }
}

impl From<Rejected> for RtError {
    fn from(r: Rejected) -> Self {
        RtError::Rejected(r)
    }
}

/// Structured admission-control rejection: why a bounded-resource layer
/// refused new work. Explicit backpressure — callers match on the reason
/// (shed load vs. retry elsewhere) instead of parsing a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Rejected {
    /// The admission queue is at capacity; retry later or shed load.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The service is draining toward shutdown and admits nothing new.
    Draining,
    /// The requested model key was never admitted to the service.
    UnknownModel {
        /// The unknown cache key.
        key: u64,
    },
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            Rejected::Draining => f.write_str("service is draining"),
            Rejected::UnknownModel { key } => {
                write!(f, "unknown model key {key:#018x}")
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// Error type for layer, loss, and optimizer operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor kernel failed.
    Tensor(TensorError),
    /// `backward` was called before any `forward` populated the caches.
    BackwardBeforeForward {
        /// Name of the layer that was misused.
        layer: &'static str,
    },
    /// A label index was outside the number of classes.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// Number of classes in the logits.
        classes: usize,
    },
    /// Batch sizes of two inputs to a loss disagreed.
    BatchMismatch {
        /// Batch size of the predictions.
        predictions: usize,
        /// Number of targets provided.
        targets: usize,
    },
    /// A state-dict could not be loaded into the model.
    StateDictMismatch {
        /// Human-readable description of the incompatibility.
        detail: String,
    },
    /// A configuration value was invalid (e.g. a negative learning rate).
    InvalidConfig {
        /// Human-readable description of the invalid value.
        detail: String,
    },
    /// A checkpoint payload failed integrity validation: checksum mismatch,
    /// truncated/garbled bytes, or non-finite parameter values.
    CorruptCheckpoint {
        /// Human-readable description of what failed validation.
        detail: String,
    },
    /// Training produced a non-finite loss (NaN/Inf) — the optimizer state
    /// can no longer be trusted past this point.
    Diverged {
        /// Epoch index (0-based) at which the loss went non-finite.
        epoch: usize,
        /// Batch index (0-based) within the epoch.
        batch: usize,
    },
    /// The supervision token was tripped (typically by the experiment
    /// runner's wall-clock watchdog) and training stopped cooperatively at
    /// a batch boundary. Unlike [`NnError::Diverged`], no state is
    /// suspect — the work simply ran out of time.
    DeadlineExceeded {
        /// Epoch index (0-based) at which cancellation was observed.
        epoch: usize,
        /// Batch index (0-based) within the epoch.
        batch: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BackwardBeforeForward { layer } => {
                write!(f, "`{layer}` backward called before forward")
            }
            NnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            NnError::BatchMismatch {
                predictions,
                targets,
            } => write!(
                f,
                "batch mismatch: {predictions} predictions vs {targets} targets"
            ),
            NnError::StateDictMismatch { detail } => {
                write!(f, "state dict mismatch: {detail}")
            }
            NnError::InvalidConfig { detail } => write!(f, "invalid config: {detail}"),
            NnError::CorruptCheckpoint { detail } => {
                write!(f, "corrupt checkpoint: {detail}")
            }
            NnError::Diverged { epoch, batch } => {
                write!(
                    f,
                    "training diverged: non-finite loss at epoch {epoch}, batch {batch}"
                )
            }
            NnError::DeadlineExceeded { epoch, batch } => {
                write!(
                    f,
                    "deadline exceeded: cancellation observed at epoch {epoch}, batch {batch}"
                )
            }
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error_with_source() {
        use std::error::Error as _;
        let e: NnError = TensorError::EmptyTensor { op: "max" }.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("max"));
    }

    #[test]
    fn send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
        assert_send_sync::<RtError>();
        assert_send_sync::<Rejected>();
    }

    #[test]
    fn rt_error_unifies_the_lower_layers() {
        use std::error::Error as _;
        let t: RtError = TensorError::EmptyTensor { op: "sum" }.into();
        assert!(matches!(t, RtError::Tensor(_)));
        assert!(t.source().is_some());
        let n: RtError = NnError::InvalidConfig {
            detail: "lr".into(),
        }
        .into();
        assert!(n.to_string().contains("invalid config"));
        let io: RtError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(io, RtError::Io(_)));
    }

    #[test]
    fn rejection_is_structured_and_matchable() {
        let r: RtError = Rejected::QueueFull { capacity: 8 }.into();
        match r {
            RtError::Rejected(Rejected::QueueFull { capacity }) => assert_eq!(capacity, 8),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        assert!(Rejected::Draining.to_string().contains("draining"));
    }

    #[test]
    fn layer_variant_downcasts_to_the_original() {
        use std::error::Error as _;
        #[derive(Debug)]
        struct Upstream;
        impl fmt::Display for Upstream {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str("upstream broke")
            }
        }
        impl std::error::Error for Upstream {}
        let e = RtError::Layer {
            layer: "runner",
            source: Box::new(Upstream),
        };
        assert!(e.to_string().contains("upstream broke"));
        let src = e.source().expect("layer errors carry a source");
        assert!(src.downcast_ref::<Upstream>().is_some());
    }
}
