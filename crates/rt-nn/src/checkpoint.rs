//! Model state capture and restore.
//!
//! A [`StateDict`] snapshots every parameter tensor and every buffer
//! (BatchNorm running statistics) of a model in the model's own stable
//! iteration order. It round-trips through `serde`, so checkpoints can be
//! written to JSON. Crucially for the ticket-drawing pipelines, restoring a
//! state dict is how IMP *rewinds* a trained model back to its pretrained
//! weights.
//!
//! # Integrity hardening
//!
//! Checkpoints written by [`StateDict::to_json`] embed an FNV-1a checksum
//! over every parameter name, shape, and scalar bit pattern.
//! [`StateDict::from_json`] recomputes and verifies it, and additionally
//! rejects non-finite (NaN/Inf) parameter or buffer values — a checkpoint
//! that fails either check returns [`NnError::CorruptCheckpoint`] instead
//! of silently loading garbage into a model. Pre-hardening payloads
//! (without a checksum field) still load, but are subject to the
//! finiteness check. [`StateDict::save_to_file`] writes atomically
//! (temp file + rename) so an interrupted save never leaves a torn
//! checkpoint at the destination path.

use crate::{ExecCtx, Layer, NnError, Result};
use rt_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// A named parameter snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateEntry {
    /// Parameter name (metadata; matching is positional).
    pub name: String,
    /// The captured tensor.
    pub tensor: Tensor,
}

/// A full snapshot of a model's parameters and buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StateDict {
    /// Parameter snapshots, in `Layer::params` order.
    pub params: Vec<StateEntry>,
    /// Buffer snapshots (e.g. BatchNorm running stats), in `Layer::buffers`
    /// order.
    pub buffers: Vec<Tensor>,
}

impl StateDict {
    /// Captures the current state of `model`.
    pub fn capture(model: &dyn Layer) -> Self {
        StateDict {
            params: model
                .params()
                .into_iter()
                .map(|p| StateEntry {
                    name: p.name.clone(),
                    tensor: p.data.clone(),
                })
                .collect(),
            buffers: model.buffers().into_iter().cloned().collect(),
        }
    }

    /// Restores this snapshot into `model`, replacing parameter data and
    /// buffers. Gradients, momentum buffers, and masks are untouched —
    /// callers that rewind during IMP re-apply masks afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateDictMismatch`] if the counts or any tensor
    /// shape disagree with the model, and [`NnError::CorruptCheckpoint`] if
    /// the snapshot contains non-finite values (a model must never be
    /// silently loaded from a diverged or corrupted snapshot).
    pub fn restore(&self, model: &mut dyn Layer) -> Result<()> {
        self.validate_finite()?;
        let params = model.params_mut();
        if params.len() != self.params.len() {
            return Err(NnError::StateDictMismatch {
                detail: format!(
                    "model has {} params, snapshot has {}",
                    params.len(),
                    self.params.len()
                ),
            });
        }
        for (p, entry) in params.into_iter().zip(&self.params) {
            if p.data.shape() != entry.tensor.shape() {
                return Err(NnError::StateDictMismatch {
                    detail: format!(
                        "param `{}`: model shape {:?} vs snapshot shape {:?}",
                        p.name,
                        p.data.shape(),
                        entry.tensor.shape()
                    ),
                });
            }
            p.data = entry.tensor.clone();
        }
        let buffers = model.buffers_mut();
        if buffers.len() != self.buffers.len() {
            return Err(NnError::StateDictMismatch {
                detail: format!(
                    "model has {} buffers, snapshot has {}",
                    buffers.len(),
                    self.buffers.len()
                ),
            });
        }
        for (b, snap) in buffers.into_iter().zip(&self.buffers) {
            if b.shape() != snap.shape() {
                return Err(NnError::StateDictMismatch {
                    detail: format!(
                        "buffer shape {:?} vs snapshot shape {:?}",
                        b.shape(),
                        snap.shape()
                    ),
                });
            }
            *b = snap.clone();
        }
        Ok(())
    }

    /// FNV-1a (64-bit) checksum over the full snapshot: parameter names,
    /// shapes, and exact scalar bit patterns, plus buffer shapes and bits.
    /// Deterministic across platforms (f32 bit patterns, not text).
    pub fn checksum(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.params.len());
        for entry in &self.params {
            h.write_bytes(entry.name.as_bytes());
            h.write_usize(entry.tensor.shape().len());
            for &d in entry.tensor.shape() {
                h.write_usize(d);
            }
            for &v in entry.tensor.data() {
                h.write_u32(v.to_bits());
            }
        }
        h.write_usize(self.buffers.len());
        for buf in &self.buffers {
            h.write_usize(buf.shape().len());
            for &d in buf.shape() {
                h.write_usize(d);
            }
            for &v in buf.data() {
                h.write_u32(v.to_bits());
            }
        }
        h.finish()
    }

    /// Checks that every parameter and buffer scalar is finite.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CorruptCheckpoint`] naming the first offending
    /// tensor.
    pub fn validate_finite(&self) -> Result<()> {
        for entry in &self.params {
            if !entry.tensor.data().iter().all(|v| v.is_finite()) {
                return Err(NnError::CorruptCheckpoint {
                    detail: format!("non-finite value in param `{}`", entry.name),
                });
            }
        }
        for (i, buf) in self.buffers.iter().enumerate() {
            if !buf.data().iter().all(|v| v.is_finite()) {
                return Err(NnError::CorruptCheckpoint {
                    detail: format!("non-finite value in buffer {i}"),
                });
            }
        }
        Ok(())
    }

    /// Serializes to a JSON string with an embedded integrity checksum
    /// (see [`StateDict::checksum`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateDictMismatch`] on serializer failure (should
    /// not occur for finite tensors).
    pub fn to_json(&self) -> Result<String> {
        let envelope = EnvelopeRef {
            version: CHECKPOINT_VERSION,
            checksum: Some(self.checksum()),
            params: &self.params,
            buffers: &self.buffers,
        };
        serde_json::to_string(&envelope).map_err(|e| NnError::StateDictMismatch {
            detail: format!("serialize failed: {e}"),
        })
    }

    /// Deserializes from a JSON string produced by [`StateDict::to_json`],
    /// verifying the embedded checksum (when present — pre-hardening
    /// payloads without one still load) and rejecting non-finite values.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CorruptCheckpoint`] on malformed/truncated input,
    /// checksum mismatch, or non-finite parameters.
    pub fn from_json(json: &str) -> Result<Self> {
        let envelope: Envelope =
            serde_json::from_str(json).map_err(|e| NnError::CorruptCheckpoint {
                detail: format!("deserialize failed: {e}"),
            })?;
        let dict = StateDict {
            params: envelope.params,
            buffers: envelope.buffers,
        };
        if let Some(expected) = envelope.checksum {
            let actual = dict.checksum();
            if actual != expected {
                return Err(NnError::CorruptCheckpoint {
                    detail: format!(
                        "checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
                    ),
                });
            }
        }
        dict.validate_finite()?;
        Ok(dict)
    }

    /// Writes the checkpoint to `path` atomically: the JSON payload goes to
    /// a sibling temp file which is then renamed over `path`, so a crash
    /// mid-write never leaves a torn checkpoint at the destination.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CorruptCheckpoint`] on I/O failure and
    /// serialization errors from [`StateDict::to_json`].
    pub fn save_to_file(&self, path: &Path) -> Result<()> {
        let json = self.to_json()?;
        atomic_write(path, json.as_bytes()).map_err(|e| NnError::CorruptCheckpoint {
            detail: format!("atomic save to {} failed: {e}", path.display()),
        })
    }

    /// Reads and validates a checkpoint written by
    /// [`StateDict::save_to_file`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::CorruptCheckpoint`] on I/O failure, checksum
    /// mismatch, truncation, or non-finite values.
    pub fn load_from_file(path: &Path) -> Result<Self> {
        let json = std::fs::read_to_string(path).map_err(|e| NnError::CorruptCheckpoint {
            detail: format!("read {} failed: {e}", path.display()),
        })?;
        Self::from_json(&json)
    }

    /// Total number of scalars captured (parameters only).
    pub fn param_scalar_count(&self) -> usize {
        self.params.iter().map(|e| e.tensor.len()).sum()
    }
}

/// Checkpoint envelope format version.
const CHECKPOINT_VERSION: u32 = 1;

/// Serialization mirror of the on-disk checkpoint envelope (borrowing).
#[derive(Serialize)]
struct EnvelopeRef<'a> {
    version: u32,
    checksum: Option<u64>,
    params: &'a [StateEntry],
    buffers: &'a [Tensor],
}

/// Deserialization mirror of the on-disk checkpoint envelope. `version`
/// and `checksum` default so pre-hardening payloads (a bare `StateDict`
/// object) still parse.
#[derive(Deserialize)]
struct Envelope {
    #[serde(default)]
    #[allow(dead_code)] // forward-compat discriminator, currently single-version
    version: u32,
    #[serde(default)]
    checksum: Option<u64>,
    params: Vec<StateEntry>,
    buffers: Vec<Tensor>,
}

/// Incremental FNV-1a (64-bit) hasher — tiny, dependency-free, and
/// deterministic across platforms.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_usize(&mut self, v: usize) {
        self.write_bytes(&(v as u64).to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Writes `bytes` to `path` atomically: the payload is written to a
/// sibling `.tmp` file, flushed, renamed over `path`, and the parent
/// directory is fsynced so the rename itself is durable. Readers
/// therefore observe either the old file or the complete new one, never a
/// prefix — and the new name survives power loss, not just a process
/// crash. Exposed so other crates (result records, pretrain caches) can
/// share the same torn-write protection.
///
/// # Errors
///
/// Propagates I/O errors; on failure the destination is left untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_else(|| "checkpoint".into());
    tmp_name.push(".tmp");
    let tmp: PathBuf = path.with_file_name(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => sync_parent_dir(path),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Fsyncs the directory containing `path`, making a just-performed rename
/// durable across power loss. POSIX only persists directory entries on
/// directory fsync; without this a crash after `rename` can resurrect the
/// old file (or neither). No-op on platforms where directories cannot be
/// opened for syncing.
fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm2d, Conv2d, Conv2dConfig, Linear};
    use crate::{Mode, Sequential};
    use rt_tensor::rng::rng_from_seed;

    fn model() -> Sequential {
        let mut rng = rng_from_seed(42);
        Sequential::new(vec![
            Box::new(Conv2d::new(1, 2, Conv2dConfig::same3x3(), &mut rng).unwrap()),
            Box::new(BatchNorm2d::new(2)),
        ])
    }

    #[test]
    fn capture_restore_round_trip() {
        let mut m = model();
        let snap = StateDict::capture(&m);
        // Perturb the model, run BN forward to move running stats.
        for p in m.params_mut() {
            p.data.fill(9.0);
        }
        m.forward(&Tensor::ones(&[2, 1, 4, 4]), ExecCtx::train())
            .unwrap();
        snap.restore(&mut m).unwrap();
        let snap2 = StateDict::capture(&m);
        assert_eq!(snap, snap2);
    }

    #[test]
    fn restore_rejects_wrong_model() {
        let m = model();
        let snap = StateDict::capture(&m);
        let mut rng = rng_from_seed(0);
        let mut other = Sequential::new(vec![Box::new(Linear::new(2, 2, &mut rng).unwrap())]);
        assert!(matches!(
            snap.restore(&mut other),
            Err(NnError::StateDictMismatch { .. })
        ));
    }

    #[test]
    fn restore_rejects_wrong_shapes() {
        let m = model();
        let mut snap = StateDict::capture(&m);
        snap.params[0].tensor = Tensor::zeros(&[1]);
        let mut m2 = model();
        assert!(snap.restore(&mut m2).is_err());
    }

    #[test]
    fn json_round_trip() {
        let m = model();
        let snap = StateDict::capture(&m);
        let json = snap.to_json().unwrap();
        let back = StateDict::from_json(&json).unwrap();
        assert_eq!(snap, back);
        assert!(StateDict::from_json("not json").is_err());
    }

    #[test]
    fn captures_buffers() {
        let mut m = model();
        // Move the BN running stats away from their init.
        m.forward(&Tensor::full(&[2, 1, 4, 4], 5.0), ExecCtx::train())
            .unwrap();
        let snap = StateDict::capture(&m);
        assert_eq!(snap.buffers.len(), 2);
        assert!(snap.buffers[0].l1_norm() > 0.0, "running mean moved");
    }

    #[test]
    fn scalar_count() {
        let m = model();
        let snap = StateDict::capture(&m);
        // conv weight 2*1*3*3 = 18, bn gamma 2 + beta 2.
        assert_eq!(snap.param_scalar_count(), 22);
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let m = model();
        let snap = StateDict::capture(&m);
        assert_eq!(snap.checksum(), snap.checksum(), "checksum is a pure fn");
        let mut tweaked = snap.clone();
        let mut data = tweaked.params[0].tensor.data().to_vec();
        data[0] += 1.0;
        tweaked.params[0].tensor =
            Tensor::from_vec(tweaked.params[0].tensor.shape().to_vec(), data).unwrap();
        assert_ne!(snap.checksum(), tweaked.checksum(), "one-scalar change detected");
    }

    #[test]
    fn truncated_json_is_rejected_not_panicking() {
        let snap = StateDict::capture(&model());
        let json = snap.to_json().unwrap();
        // Every proper prefix must fail with a structured error — never
        // panic, never silently load.
        for keep in [0, 1, json.len() / 4, json.len() / 2, json.len() - 1] {
            let err = StateDict::from_json(&json[..keep]).unwrap_err();
            assert!(
                matches!(err, NnError::CorruptCheckpoint { .. }),
                "prefix of {keep} bytes: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn bitflipped_payload_fails_checksum() {
        let snap = StateDict::capture(&model());
        let json = snap.to_json().unwrap();
        // Simulate a flipped bit by perturbing one stored scalar while
        // leaving the embedded checksum untouched.
        let mut v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let scalar = &mut v["params"][0]["tensor"]["data"][0];
        let old = scalar.as_f64().unwrap();
        *scalar = serde_json::json!(old + 0.5);
        let corrupted = serde_json::to_string(&v).unwrap();
        let err = StateDict::from_json(&corrupted).unwrap_err();
        assert!(
            matches!(err, NnError::CorruptCheckpoint { ref detail } if detail.contains("checksum")),
            "expected checksum mismatch, got {err:?}"
        );
    }

    #[test]
    fn nonfinite_params_are_rejected() {
        let mut snap = StateDict::capture(&model());
        let shape = snap.params[0].tensor.shape().to_vec();
        let mut data = snap.params[0].tensor.data().to_vec();
        data[0] = f32::NAN;
        snap.params[0].tensor = Tensor::from_vec(shape, data).unwrap();
        // validate_finite and restore both refuse.
        assert!(matches!(
            snap.validate_finite(),
            Err(NnError::CorruptCheckpoint { .. })
        ));
        let mut m = model();
        assert!(matches!(
            snap.restore(&mut m),
            Err(NnError::CorruptCheckpoint { .. })
        ));
        // Inf in a buffer is caught too.
        let mut snap2 = StateDict::capture(&model());
        let bshape = snap2.buffers[0].shape().to_vec();
        let mut bdata = snap2.buffers[0].data().to_vec();
        bdata[0] = f32::INFINITY;
        snap2.buffers[0] = Tensor::from_vec(bshape, bdata).unwrap();
        assert!(matches!(
            snap2.validate_finite(),
            Err(NnError::CorruptCheckpoint { .. })
        ));
    }

    #[test]
    fn legacy_payload_without_checksum_still_loads() {
        let snap = StateDict::capture(&model());
        // The pre-hardening format was a bare serde dump of StateDict.
        let legacy = serde_json::to_string(&snap).unwrap();
        let back = StateDict::from_json(&legacy).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn atomic_file_round_trip_and_torn_write_detection() {
        let dir = std::env::temp_dir().join("rt-ckpt-atomic-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("snap.json");
        let snap = StateDict::capture(&model());
        snap.save_to_file(&path).unwrap();
        // No stray temp file after a successful save.
        assert!(!path.with_file_name("snap.json.tmp").exists());
        let back = StateDict::load_from_file(&path).unwrap();
        assert_eq!(back, snap);
        // A torn write (truncated destination) is detected on load.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            StateDict::load_from_file(&path),
            Err(NnError::CorruptCheckpoint { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
