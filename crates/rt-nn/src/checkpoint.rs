//! Model state capture and restore.
//!
//! A [`StateDict`] snapshots every parameter tensor and every buffer
//! (BatchNorm running statistics) of a model in the model's own stable
//! iteration order. It round-trips through `serde`, so checkpoints can be
//! written to JSON. Crucially for the ticket-drawing pipelines, restoring a
//! state dict is how IMP *rewinds* a trained model back to its pretrained
//! weights.

use crate::{Layer, NnError, Result};
use rt_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A named parameter snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateEntry {
    /// Parameter name (metadata; matching is positional).
    pub name: String,
    /// The captured tensor.
    pub tensor: Tensor,
}

/// A full snapshot of a model's parameters and buffers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StateDict {
    /// Parameter snapshots, in `Layer::params` order.
    pub params: Vec<StateEntry>,
    /// Buffer snapshots (e.g. BatchNorm running stats), in `Layer::buffers`
    /// order.
    pub buffers: Vec<Tensor>,
}

impl StateDict {
    /// Captures the current state of `model`.
    pub fn capture(model: &dyn Layer) -> Self {
        StateDict {
            params: model
                .params()
                .into_iter()
                .map(|p| StateEntry {
                    name: p.name.clone(),
                    tensor: p.data.clone(),
                })
                .collect(),
            buffers: model.buffers().into_iter().cloned().collect(),
        }
    }

    /// Restores this snapshot into `model`, replacing parameter data and
    /// buffers. Gradients, momentum buffers, and masks are untouched —
    /// callers that rewind during IMP re-apply masks afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateDictMismatch`] if the counts or any tensor
    /// shape disagree with the model.
    pub fn restore(&self, model: &mut dyn Layer) -> Result<()> {
        let params = model.params_mut();
        if params.len() != self.params.len() {
            return Err(NnError::StateDictMismatch {
                detail: format!(
                    "model has {} params, snapshot has {}",
                    params.len(),
                    self.params.len()
                ),
            });
        }
        for (p, entry) in params.into_iter().zip(&self.params) {
            if p.data.shape() != entry.tensor.shape() {
                return Err(NnError::StateDictMismatch {
                    detail: format!(
                        "param `{}`: model shape {:?} vs snapshot shape {:?}",
                        p.name,
                        p.data.shape(),
                        entry.tensor.shape()
                    ),
                });
            }
            p.data = entry.tensor.clone();
        }
        let buffers = model.buffers_mut();
        if buffers.len() != self.buffers.len() {
            return Err(NnError::StateDictMismatch {
                detail: format!(
                    "model has {} buffers, snapshot has {}",
                    buffers.len(),
                    self.buffers.len()
                ),
            });
        }
        for (b, snap) in buffers.into_iter().zip(&self.buffers) {
            if b.shape() != snap.shape() {
                return Err(NnError::StateDictMismatch {
                    detail: format!(
                        "buffer shape {:?} vs snapshot shape {:?}",
                        b.shape(),
                        snap.shape()
                    ),
                });
            }
            *b = snap.clone();
        }
        Ok(())
    }

    /// Serializes to a JSON string.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateDictMismatch`] on serializer failure (should
    /// not occur for finite tensors).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| NnError::StateDictMismatch {
            detail: format!("serialize failed: {e}"),
        })
    }

    /// Deserializes from a JSON string produced by [`StateDict::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateDictMismatch`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| NnError::StateDictMismatch {
            detail: format!("deserialize failed: {e}"),
        })
    }

    /// Total number of scalars captured (parameters only).
    pub fn param_scalar_count(&self) -> usize {
        self.params.iter().map(|e| e.tensor.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm2d, Conv2d, Conv2dConfig, Linear};
    use crate::{Mode, Sequential};
    use rt_tensor::rng::rng_from_seed;

    fn model() -> Sequential {
        let mut rng = rng_from_seed(42);
        Sequential::new(vec![
            Box::new(Conv2d::new(1, 2, Conv2dConfig::same3x3(), &mut rng).unwrap()),
            Box::new(BatchNorm2d::new(2)),
        ])
    }

    #[test]
    fn capture_restore_round_trip() {
        let mut m = model();
        let snap = StateDict::capture(&m);
        // Perturb the model, run BN forward to move running stats.
        for p in m.params_mut() {
            p.data.fill(9.0);
        }
        m.forward(&Tensor::ones(&[2, 1, 4, 4]), Mode::Train)
            .unwrap();
        snap.restore(&mut m).unwrap();
        let snap2 = StateDict::capture(&m);
        assert_eq!(snap, snap2);
    }

    #[test]
    fn restore_rejects_wrong_model() {
        let m = model();
        let snap = StateDict::capture(&m);
        let mut rng = rng_from_seed(0);
        let mut other = Sequential::new(vec![Box::new(Linear::new(2, 2, &mut rng).unwrap())]);
        assert!(matches!(
            snap.restore(&mut other),
            Err(NnError::StateDictMismatch { .. })
        ));
    }

    #[test]
    fn restore_rejects_wrong_shapes() {
        let m = model();
        let mut snap = StateDict::capture(&m);
        snap.params[0].tensor = Tensor::zeros(&[1]);
        let mut m2 = model();
        assert!(snap.restore(&mut m2).is_err());
    }

    #[test]
    fn json_round_trip() {
        let m = model();
        let snap = StateDict::capture(&m);
        let json = snap.to_json().unwrap();
        let back = StateDict::from_json(&json).unwrap();
        assert_eq!(snap, back);
        assert!(StateDict::from_json("not json").is_err());
    }

    #[test]
    fn captures_buffers() {
        let mut m = model();
        // Move the BN running stats away from their init.
        m.forward(&Tensor::full(&[2, 1, 4, 4], 5.0), Mode::Train)
            .unwrap();
        let snap = StateDict::capture(&m);
        assert_eq!(snap.buffers.len(), 2);
        assert!(snap.buffers[0].l1_norm() > 0.0, "running mean moved");
    }

    #[test]
    fn scalar_count() {
        let m = model();
        let snap = StateDict::capture(&m);
        // conv weight 2*1*3*3 = 18, bn gamma 2 + beta 2.
        assert_eq!(snap.param_scalar_count(), 22);
    }
}
