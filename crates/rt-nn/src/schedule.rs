//! Learning-rate schedules.
//!
//! The paper finetunes for 150 epochs with step decay (×0.1 at epochs 50 and
//! 100); [`StepDecay::paper_recipe`] scales that protocol to any epoch
//! budget by placing the milestones at 1/3 and 2/3 of training.

/// A learning-rate schedule: maps an epoch index to a learning rate.
pub trait LrSchedule {
    /// Learning rate to use during `epoch` (0-based).
    fn lr_at(&self, epoch: usize) -> f32;
}

/// Constant learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantLr {
    /// The learning rate.
    pub lr: f32,
}

impl ConstantLr {
    /// Creates a constant schedule.
    pub fn new(lr: f32) -> Self {
        ConstantLr { lr }
    }
}

impl LrSchedule for ConstantLr {
    fn lr_at(&self, _epoch: usize) -> f32 {
        self.lr
    }
}

/// Step decay: multiply the base LR by `gamma` at each milestone epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct StepDecay {
    base: f32,
    gamma: f32,
    milestones: Vec<usize>,
}

impl StepDecay {
    /// Creates a step-decay schedule.
    ///
    /// # Panics
    ///
    /// Panics if `milestones` is not sorted ascending.
    pub fn new(base: f32, gamma: f32, milestones: Vec<usize>) -> Self {
        assert!(
            milestones.windows(2).all(|w| w[0] <= w[1]),
            "milestones must be sorted"
        );
        StepDecay {
            base,
            gamma,
            milestones,
        }
    }

    /// The paper's protocol (decay ×0.1 at 1/3 and 2/3 of training) scaled
    /// to `total_epochs`.
    pub fn paper_recipe(base: f32, total_epochs: usize) -> Self {
        StepDecay::new(base, 0.1, vec![total_epochs / 3, 2 * total_epochs / 3])
    }
}

impl LrSchedule for StepDecay {
    fn lr_at(&self, epoch: usize) -> f32 {
        let decays = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.base * self.gamma.powi(decays as i32)
    }
}

/// Cosine annealing from `base` down to `min_lr` over `total` epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosineLr {
    base: f32,
    min_lr: f32,
    total: usize,
}

impl CosineLr {
    /// Creates a cosine schedule over `total` epochs.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    pub fn new(base: f32, min_lr: f32, total: usize) -> Self {
        assert!(total > 0, "cosine schedule needs at least one epoch");
        CosineLr {
            base,
            min_lr,
            total,
        }
    }
}

impl LrSchedule for CosineLr {
    fn lr_at(&self, epoch: usize) -> f32 {
        let t = (epoch.min(self.total) as f32) / self.total as f32;
        self.min_lr + 0.5 * (self.base - self.min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = ConstantLr::new(0.1);
        assert_eq!(s.lr_at(0), 0.1);
        assert_eq!(s.lr_at(1000), 0.1);
    }

    #[test]
    fn step_decay_applies_at_milestones() {
        let s = StepDecay::new(1.0, 0.1, vec![5, 10]);
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(4), 1.0);
        assert!((s.lr_at(5) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(9) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(10) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn paper_recipe_milestones() {
        let s = StepDecay::paper_recipe(0.01, 150);
        assert_eq!(s.lr_at(49), 0.01);
        assert!((s.lr_at(50) - 0.001).abs() < 1e-8);
        assert!((s.lr_at(100) - 0.0001).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_milestones_panic() {
        let _ = StepDecay::new(1.0, 0.1, vec![10, 5]);
    }

    #[test]
    fn cosine_endpoints_and_monotonicity() {
        let s = CosineLr::new(1.0, 0.0, 10);
        assert!((s.lr_at(0) - 1.0).abs() < 1e-6);
        assert!(s.lr_at(10) < 1e-6);
        for e in 0..10 {
            assert!(s.lr_at(e) >= s.lr_at(e + 1));
        }
        // Clamps past the horizon.
        assert_eq!(s.lr_at(20), s.lr_at(10));
    }
}
