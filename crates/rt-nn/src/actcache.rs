//! Frozen-prefix activation cache.
//!
//! Finetuning a ticket re-runs the same frozen, masked backbone prefix on
//! the same samples every epoch — the per-sample prefix outputs never
//! change, because every layer in the prefix is a pure per-sample
//! function ([`crate::Layer::forward_is_pure`]) of frozen parameters.
//! [`ActCache`] stores those outputs keyed by **sample index** so epochs
//! after the first skip the prefix forward (and backward) entirely.
//!
//! # Correctness by construction
//!
//! * **Per-sample keying.** Eligible layers produce sample `i`'s output
//!   from sample `i`'s input alone, in a fixed floating-point order
//!   regardless of batch composition (the GEMM kernels accumulate each
//!   output row independently in fixed k-order). A cached slice is
//!   therefore bit-identical to recomputation under any shuffle.
//! * **Checksum invalidation.** The cache remembers an FNV-1a fingerprint
//!   of the prefix (split point, every parameter's data bits, mask
//!   presence and bits). [`ActCache::begin_epoch`] compares fingerprints
//!   and drops everything on mismatch — a perturbed prefix weight, a
//!   re-pruned mask, or a different split can never serve stale bytes.
//! * **All-or-nothing assembly.** A batch is served from cache only when
//!   *every* sample is present; otherwise the caller recomputes the whole
//!   batch (and re-inserts), so a partially-warm cache never mixes code
//!   paths within one batch.
//!
//! # Capacity
//!
//! `RT_ACT_CACHE_MB` caps the payload bytes (default 256 MiB; `0`
//! disables caching entirely — the kill switch). Over-cap inserts evict
//! least-recently-served samples; with fewer budgeted samples than the
//! dataset the cache degrades to partial hit rates, never to wrong bytes.
//!
//! Observability: `cache.act_hits` / `cache.act_misses` count *samples*
//! served / recomputed, and the `cache.act_bytes` gauge tracks residency.

use crate::{Param, Sequential};
use rt_tensor::{pool, Tensor};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, Ordering};

/// Process-wide default cache capacity in MiB: `-1` = unresolved.
static CACHE_MB_DEFAULT: AtomicI64 = AtomicI64::new(-1);

/// Built-in default capacity when `RT_ACT_CACHE_MB` is unset.
const DEFAULT_CACHE_MB: usize = 256;

/// The process-wide activation-cache capacity in MiB: `RT_ACT_CACHE_MB`
/// if set to a valid integer (0 disables caching), else 256 — read once
/// and cached. Tests and benchmarks should use
/// [`set_act_cache_default_mb`] instead of mutating the environment.
pub fn act_cache_default_mb() -> usize {
    let cur = CACHE_MB_DEFAULT.load(Ordering::Relaxed);
    if cur >= 0 {
        return cur as usize;
    }
    let mb = std::env::var("RT_ACT_CACHE_MB")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_CACHE_MB);
    CACHE_MB_DEFAULT.store(mb as i64, Ordering::Relaxed);
    mb
}

/// Overrides the process-wide activation-cache capacity (numerics-neutral:
/// the cache is bit-identical to recomputation at any capacity).
pub fn set_act_cache_default_mb(mb: usize) {
    CACHE_MB_DEFAULT.store(mb as i64, Ordering::Relaxed);
}

/// FNV-1a over the cacheable prefix's identity: the split point and every
/// prefix parameter's data bits, mask presence, and mask bits. Any change
/// to what the prefix computes changes this fingerprint.
pub fn prefix_fingerprint(seq: &Sequential, split: usize) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h = OFFSET;
    let mut fold_u64 = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    fold_u64(split as u64);
    let fold_param = |fold_u64: &mut dyn FnMut(u64), p: &Param| {
        fold_u64(p.data.len() as u64);
        for &v in p.data.data() {
            fold_u64(u64::from(v.to_bits()));
        }
        match &p.mask {
            None => fold_u64(0),
            Some(mask) => {
                fold_u64(1);
                for &v in mask.data() {
                    fold_u64(u64::from(v.to_bits()));
                }
            }
        }
    };
    for child in &seq.children()[..split.min(seq.len())] {
        for p in child.params() {
            fold_param(&mut fold_u64, p);
        }
    }
    h
}

struct Entry {
    data: Vec<f32>,
    tick: u64,
}

/// Epoch-persistent cache of frozen-prefix activations; see the module
/// docs for the keying, invalidation, and capacity contracts.
pub struct ActCache {
    capacity_bytes: usize,
    fingerprint: Option<u64>,
    /// Flat length of one cached sample; learned at first insert and
    /// enforced thereafter (a shape change implies a fingerprint change,
    /// which clears the cache first).
    sample_len: usize,
    /// Trailing (per-sample) shape of the cached activation.
    sample_shape: Vec<usize>,
    entries: HashMap<usize, Entry>,
    /// LRU order: tick → sample index. Ticks are unique (monotone
    /// counter), so this is a total order on residents.
    lru: BTreeMap<u64, usize>,
    tick: u64,
    /// Recycled entry buffers from evictions.
    free: Vec<Vec<f32>>,
    hits: rt_obs::Counter,
    misses: rt_obs::Counter,
    bytes_gauge: rt_obs::Gauge,
}

impl std::fmt::Debug for ActCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActCache")
            .field("entries", &self.entries.len())
            .field("bytes", &self.bytes())
            .field("capacity_bytes", &self.capacity_bytes)
            .finish()
    }
}

impl Default for ActCache {
    fn default() -> Self {
        Self::new()
    }
}

impl ActCache {
    /// A cache with the process-wide default capacity
    /// ([`act_cache_default_mb`]).
    pub fn new() -> Self {
        Self::with_capacity_mb(act_cache_default_mb())
    }

    /// A cache capped at `mb` MiB of payload; `0` disables caching.
    pub fn with_capacity_mb(mb: usize) -> Self {
        ActCache {
            capacity_bytes: mb << 20,
            fingerprint: None,
            sample_len: 0,
            sample_shape: Vec::new(),
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            tick: 0,
            free: Vec::new(),
            hits: rt_obs::counter("cache.act_hits"),
            misses: rt_obs::counter("cache.act_misses"),
            bytes_gauge: rt_obs::gauge("cache.act_bytes"),
        }
    }

    /// Whether the cache can hold anything (capacity > 0).
    pub fn is_enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// Number of resident samples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no samples are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resident payload bytes.
    pub fn bytes(&self) -> usize {
        self.entries.len() * self.sample_len * std::mem::size_of::<f32>()
    }

    /// Declares the prefix identity for the coming epoch. A fingerprint
    /// mismatch (perturbed weight, new mask, different split — e.g. after
    /// an LR-rewind restore touched the prefix) drops every entry.
    pub fn begin_epoch(&mut self, fingerprint: u64) {
        if self.fingerprint != Some(fingerprint) {
            if !self.entries.is_empty() {
                rt_obs::counter("cache.act_invalidations").inc();
            }
            self.clear();
            self.fingerprint = Some(fingerprint);
        }
    }

    /// Drops every resident sample (buffers are recycled internally).
    pub fn clear(&mut self) {
        for (_, entry) in self.entries.drain() {
            self.free.push(entry.data);
        }
        self.lru.clear();
        self.bytes_gauge.set(0.0);
    }

    /// Serves a whole batch from cache, or `None` if any sample (or the
    /// cache itself) is missing. On success the returned tensor — leased
    /// from `rt_tensor::pool`; callers should `pool::put` it back — is
    /// bit-identical to recomputing the prefix on this batch, and every
    /// served sample's LRU position is refreshed.
    pub fn assemble(&mut self, indices: &[usize]) -> Option<Tensor> {
        if !self.is_enabled() || indices.is_empty() {
            return None;
        }
        if !indices.iter().all(|i| self.entries.contains_key(i)) {
            self.misses.add(indices.len() as u64);
            return None;
        }
        let mut buf = pool::take(indices.len() * self.sample_len);
        for (k, i) in indices.iter().enumerate() {
            let entry = self.entries.get_mut(i).expect("presence checked above");
            buf[k * self.sample_len..(k + 1) * self.sample_len].copy_from_slice(&entry.data);
            self.lru.remove(&entry.tick);
            entry.tick = self.tick;
            self.lru.insert(self.tick, *i);
            self.tick += 1;
        }
        self.hits.add(indices.len() as u64);
        let mut shape = Vec::with_capacity(1 + self.sample_shape.len());
        shape.push(indices.len());
        shape.extend_from_slice(&self.sample_shape);
        Some(Tensor::from_vec(shape, buf).expect("cached sample shape is consistent"))
    }

    /// Inserts a freshly-computed batch of prefix outputs (`acts` shape
    /// `[B, ...]`, one leading batch axis). Evicts least-recently-served
    /// samples while over capacity; samples too large for the whole
    /// budget are skipped.
    ///
    /// # Panics
    ///
    /// Panics if `acts`'s leading dimension differs from `indices.len()`,
    /// or if its per-sample shape changes between inserts without an
    /// intervening [`ActCache::begin_epoch`] invalidation.
    pub fn insert(&mut self, indices: &[usize], acts: &Tensor) {
        if !self.is_enabled() || indices.is_empty() {
            return;
        }
        assert_eq!(
            acts.shape().first().copied().unwrap_or(0),
            indices.len(),
            "activation batch / index count mismatch"
        );
        let sample_shape = &acts.shape()[1..];
        let sample_len: usize = sample_shape.iter().product();
        if self.entries.is_empty() && self.lru.is_empty() {
            self.sample_len = sample_len;
            self.sample_shape = sample_shape.to_vec();
            // Entry buffers recycled from a differently-shaped prefix are
            // useless now.
            self.free.retain(|b| b.len() == sample_len);
        } else {
            assert_eq!(
                self.sample_len, sample_len,
                "prefix output shape changed without invalidation"
            );
        }
        let entry_bytes = sample_len * std::mem::size_of::<f32>();
        if entry_bytes > self.capacity_bytes {
            return; // one sample alone blows the budget
        }
        let src = acts.data();
        for (k, &i) in indices.iter().enumerate() {
            // Refresh rather than duplicate: identical bytes by the purity
            // contract, so only the LRU position moves.
            if let Some(entry) = self.entries.get_mut(&i) {
                self.lru.remove(&entry.tick);
                entry.tick = self.tick;
                self.lru.insert(self.tick, i);
                self.tick += 1;
                continue;
            }
            while self.bytes() + entry_bytes > self.capacity_bytes {
                let (_, oldest) = self.lru.pop_first().expect("over-cap cache has residents");
                let evicted = self.entries.remove(&oldest).expect("lru tracks residents");
                self.free.push(evicted.data);
            }
            let mut data = self.free.pop().unwrap_or_default();
            data.clear();
            data.extend_from_slice(&src[k * sample_len..(k + 1) * sample_len]);
            self.entries.insert(
                i,
                Entry {
                    data,
                    tick: self.tick,
                },
            );
            self.lru.insert(self.tick, i);
            self.tick += 1;
        }
        self.bytes_gauge.set(self.bytes() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use crate::{ExecCtx, Layer};
    use rt_tensor::rng::rng_from_seed;

    fn frozen_then_head() -> Sequential {
        let mut rng = rng_from_seed(5);
        let mut seq = Sequential::new(vec![
            Box::new(Linear::new(6, 8, &mut rng).unwrap()) as Box<dyn Layer>,
            Box::new(Relu::new()),
            Box::new(Linear::new(8, 3, &mut rng).unwrap()),
        ]);
        for p in seq.children_mut()[0].params_mut() {
            p.trainable = false;
        }
        seq
    }

    #[test]
    fn split_covers_frozen_pure_prefix_only() {
        let seq = frozen_then_head();
        // Frozen linear + relu qualify; the trainable head stops the scan.
        assert_eq!(seq.split_at_trainable(), 2);
        let mut all_trainable = frozen_then_head();
        for p in all_trainable.children_mut()[0].params_mut() {
            p.trainable = true;
        }
        assert_eq!(all_trainable.split_at_trainable(), 0);
    }

    #[test]
    fn assemble_round_trips_inserted_bits() {
        let mut seq = frozen_then_head();
        let split = seq.split_at_trainable();
        let x = Tensor::from_fn(&[4, 6], |i| (i as f32 - 10.0) * 0.3);
        let mid = seq.forward_prefix(&x, ExecCtx::train(), split).unwrap();
        let mut cache = ActCache::with_capacity_mb(4);
        cache.begin_epoch(prefix_fingerprint(&seq, split));
        let indices = [7usize, 3, 11, 0];
        assert!(cache.assemble(&indices).is_none(), "cold cache must miss");
        cache.insert(&indices, &mid);
        assert_eq!(cache.len(), 4);
        // Same samples, different batch order: per-sample keying.
        let shuffled = [3usize, 7, 0, 11];
        let got = cache.assemble(&shuffled).expect("warm cache must hit");
        for (k, &i) in shuffled.iter().enumerate() {
            let row = indices.iter().position(|&j| j == i).unwrap();
            let want = &mid.data()[row * 8..(row + 1) * 8];
            let have = &got.data()[k * 8..(k + 1) * 8];
            for (a, b) in have.iter().zip(want) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        rt_tensor::pool::put(got.into_vec());
    }

    #[test]
    fn fingerprint_change_invalidates() {
        let mut seq = frozen_then_head();
        let split = seq.split_at_trainable();
        let fp = prefix_fingerprint(&seq, split);
        let x = Tensor::ones(&[2, 6]);
        let mid = seq.forward_prefix(&x, ExecCtx::train(), split).unwrap();
        let mut cache = ActCache::with_capacity_mb(4);
        cache.begin_epoch(fp);
        cache.insert(&[0, 1], &mid);
        assert_eq!(cache.len(), 2);
        // Same fingerprint: entries survive the epoch boundary.
        cache.begin_epoch(fp);
        assert_eq!(cache.len(), 2);
        // Perturb one frozen weight: fingerprint moves, cache drops.
        seq.children_mut()[0].params_mut()[0].data.data_mut()[0] += 0.5;
        let fp2 = prefix_fingerprint(&seq, split);
        assert_ne!(fp, fp2);
        cache.begin_epoch(fp2);
        assert!(cache.is_empty(), "stale entries must be dropped");
    }

    #[test]
    fn mask_identity_is_part_of_the_fingerprint() {
        let mut seq = frozen_then_head();
        let split = seq.split_at_trainable();
        let fp_unmasked = prefix_fingerprint(&seq, split);
        let ones = Tensor::ones(&[8, 6]);
        seq.children_mut()[0].params_mut()[0]
            .set_mask(ones)
            .unwrap();
        // An all-ones mask changes no weight bytes — the fingerprint must
        // still move (mask presence is identity).
        assert_ne!(fp_unmasked, prefix_fingerprint(&seq, split));
    }

    #[test]
    fn lru_evicts_least_recently_served() {
        let mut cache = ActCache::with_capacity_mb(1);
        // 64 KiB samples -> 16 fit in 1 MiB.
        let n = 64 * 1024 / 4;
        let batch = Tensor::from_fn(&[1, n], |i| i as f32);
        cache.begin_epoch(99);
        for i in 0..16 {
            cache.insert(&[i], &batch);
        }
        assert_eq!(cache.len(), 16);
        // Touch sample 0 so sample 1 is the LRU victim.
        let got = cache.assemble(&[0]).unwrap();
        rt_tensor::pool::put(got.into_vec());
        cache.insert(&[100], &batch);
        assert_eq!(cache.len(), 16, "insert over cap must evict, not grow");
        assert!(cache.assemble(&[0]).is_some(), "recently served survives");
        assert!(cache.assemble(&[1]).is_none(), "LRU victim evicted");
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let mut cache = ActCache::with_capacity_mb(0);
        assert!(!cache.is_enabled());
        cache.begin_epoch(1);
        cache.insert(&[0], &Tensor::ones(&[1, 4]));
        assert!(cache.is_empty());
        assert!(cache.assemble(&[0]).is_none());
    }
}
