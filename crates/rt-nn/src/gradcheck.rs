//! Finite-difference gradient verification.
//!
//! Every layer's hand-written backward pass in this workspace is validated
//! against central finite differences through these helpers. The scalar
//! objective is `L = Σᵢ wᵢ·yᵢ` with fixed pseudo-random coefficients `wᵢ`,
//! whose gradient w.r.t. the output is exactly `w` — so a single backward
//! call checks the whole Jacobian-vector product.

use crate::{ExecCtx, Layer, Result};
use rt_tensor::Tensor;

/// Deterministic pseudo-random coefficient for output position `i`.
fn coeff(i: usize) -> f32 {
    // A fixed irrational stride gives well-spread coefficients in [-1, 1].
    let x = (i as f32 + 1.0) * 0.754_877_7;
    2.0 * (x - x.floor()) - 1.0
}

fn weighted_sum(y: &Tensor) -> f32 {
    y.data()
        .iter()
        .enumerate()
        .map(|(i, &v)| coeff(i) * v)
        .sum()
}

fn coeff_tensor(shape: &[usize]) -> Tensor {
    Tensor::from_fn(shape, coeff)
}

/// Report from a gradient check: the largest absolute and relative
/// discrepancies between analytic and numeric gradients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Maximum absolute difference.
    pub max_abs_diff: f32,
    /// Maximum relative difference (normalized by
    /// `max(|analytic|, |numeric|, 1e-3)`).
    pub max_rel_diff: f32,
}

impl GradCheckReport {
    /// Whether the check passed at the given relative tolerance.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_diff <= tol
    }
}

/// Checks a layer's *input* gradient against central finite differences.
///
/// `ctx` should normally be [`ExecCtx::eval`] (BatchNorm batch statistics make
/// the train-mode loss a non-local function of each input, which finite
/// differences still handle, but running-stat updates would perturb repeated
/// evaluations — the checker snapshots and restores buffers to compensate).
///
/// # Errors
///
/// Propagates any layer error.
pub fn check_input_gradient(
    layer: &mut dyn Layer,
    input: &Tensor,
    ctx: ExecCtx,
    eps: f32,
) -> Result<GradCheckReport> {
    let buffers_before: Vec<Tensor> = layer.buffers().into_iter().cloned().collect();
    let restore = |layer: &mut dyn Layer| {
        for (b, snap) in layer.buffers_mut().into_iter().zip(&buffers_before) {
            *b = snap.clone();
        }
    };

    let y = layer.forward(input, ctx)?;
    let grad_out = coeff_tensor(y.shape());
    layer.zero_grad();
    let analytic = layer.backward(&grad_out, ctx)?;
    restore(layer);

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for i in 0..input.len() {
        let mut plus = input.clone();
        plus.data_mut()[i] += eps;
        let mut minus = input.clone();
        minus.data_mut()[i] -= eps;
        let lp = weighted_sum(&layer.forward(&plus, ctx)?);
        restore(layer);
        let lm = weighted_sum(&layer.forward(&minus, ctx)?);
        restore(layer);
        let numeric = (lp - lm) / (2.0 * eps);
        let a = analytic.data()[i];
        let abs = (a - numeric).abs();
        let rel = abs / a.abs().max(numeric.abs()).max(1e-3);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    Ok(GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
    })
}

/// Checks a layer's *parameter* gradients against central finite
/// differences, perturbing every scalar of every parameter.
///
/// # Errors
///
/// Propagates any layer error.
pub fn check_param_gradients(
    layer: &mut dyn Layer,
    input: &Tensor,
    ctx: ExecCtx,
    eps: f32,
) -> Result<GradCheckReport> {
    let buffers_before: Vec<Tensor> = layer.buffers().into_iter().cloned().collect();

    let y = layer.forward(input, ctx)?;
    let grad_out = coeff_tensor(y.shape());
    layer.zero_grad();
    layer.backward(&grad_out, ctx)?;
    let analytic: Vec<Tensor> = layer.params().iter().map(|p| p.grad.clone()).collect();
    for (b, snap) in layer.buffers_mut().into_iter().zip(&buffers_before) {
        *b = snap.clone();
    }

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    let n_params = layer.params().len();
    #[allow(clippy::needless_range_loop)] // `analytic[pi]` pairs with re-borrowed params
    for pi in 0..n_params {
        let len = layer.params()[pi].len();
        for i in 0..len {
            let original = layer.params()[pi].data.data()[i];
            layer.params_mut()[pi].data.data_mut()[i] = original + eps;
            let lp = weighted_sum(&layer.forward(input, ctx)?);
            for (b, snap) in layer.buffers_mut().into_iter().zip(&buffers_before) {
                *b = snap.clone();
            }
            layer.params_mut()[pi].data.data_mut()[i] = original - eps;
            let lm = weighted_sum(&layer.forward(input, ctx)?);
            for (b, snap) in layer.buffers_mut().into_iter().zip(&buffers_before) {
                *b = snap.clone();
            }
            layer.params_mut()[pi].data.data_mut()[i] = original;
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic[pi].data()[i];
            let abs = (a - numeric).abs();
            let rel = abs / a.abs().max(numeric.abs()).max(1e-3);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
    }
    Ok(GradCheckReport {
        max_abs_diff: max_abs,
        max_rel_diff: max_rel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{
        BatchNorm2d, Conv2d, Conv2dConfig, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu,
    };
    use crate::Sequential;
    use rt_tensor::init;
    use rt_tensor::rng::rng_from_seed;

    const EPS: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    fn smooth_input(shape: &[usize], seed: u64) -> Tensor {
        // Keep values away from ReLU/maxpool kink points for stable FD.
        let mut rng = rng_from_seed(seed);
        init::normal(shape, 0.0, 1.0, &mut rng).map(|x| x + 0.05 * x.signum())
    }

    #[test]
    fn linear_gradients() {
        let mut rng = rng_from_seed(0);
        let mut layer = Linear::new(4, 3, &mut rng).unwrap();
        let x = smooth_input(&[3, 4], 1);
        let rin = check_input_gradient(&mut layer, &x, ExecCtx::eval(), EPS).unwrap();
        assert!(rin.passes(TOL), "{rin:?}");
        let rp = check_param_gradients(&mut layer, &x, ExecCtx::eval(), EPS).unwrap();
        assert!(rp.passes(TOL), "{rp:?}");
    }

    #[test]
    fn conv_gradients() {
        let mut rng = rng_from_seed(2);
        let mut layer =
            Conv2d::new(2, 3, Conv2dConfig::same3x3().with_bias(true), &mut rng).unwrap();
        let x = smooth_input(&[2, 2, 4, 4], 3);
        let rin = check_input_gradient(&mut layer, &x, ExecCtx::eval(), EPS).unwrap();
        assert!(rin.passes(TOL), "{rin:?}");
        let rp = check_param_gradients(&mut layer, &x, ExecCtx::eval(), EPS).unwrap();
        assert!(rp.passes(TOL), "{rp:?}");
    }

    #[test]
    fn strided_conv_gradients() {
        let mut rng = rng_from_seed(4);
        let mut layer =
            Conv2d::new(2, 2, Conv2dConfig::same3x3().with_stride(2), &mut rng).unwrap();
        let x = smooth_input(&[1, 2, 6, 6], 5);
        let rin = check_input_gradient(&mut layer, &x, ExecCtx::eval(), EPS).unwrap();
        assert!(rin.passes(TOL), "{rin:?}");
    }

    #[test]
    fn batchnorm_train_gradients() {
        let mut layer = BatchNorm2d::new(2);
        let x = smooth_input(&[3, 2, 3, 3], 6);
        let rin = check_input_gradient(&mut layer, &x, ExecCtx::train(), EPS).unwrap();
        assert!(rin.passes(TOL), "{rin:?}");
        let rp = check_param_gradients(&mut layer, &x, ExecCtx::train(), EPS).unwrap();
        assert!(rp.passes(TOL), "{rp:?}");
    }

    #[test]
    fn batchnorm_eval_gradients() {
        let mut layer = BatchNorm2d::new(2);
        // Populate running stats first.
        let warm = smooth_input(&[4, 2, 3, 3], 7);
        layer.forward(&warm, ExecCtx::train()).unwrap();
        let x = smooth_input(&[2, 2, 3, 3], 8);
        let rin = check_input_gradient(&mut layer, &x, ExecCtx::eval(), EPS).unwrap();
        assert!(rin.passes(TOL), "{rin:?}");
    }

    #[test]
    fn relu_and_pool_gradients() {
        let mut relu = Relu::new();
        let x = smooth_input(&[2, 8], 9);
        let r = check_input_gradient(&mut relu, &x, ExecCtx::eval(), 1e-3).unwrap();
        assert!(r.passes(TOL), "{r:?}");

        let mut pool = MaxPool2d::new(2, 2);
        let xp = smooth_input(&[1, 2, 4, 4], 10);
        let rp = check_input_gradient(&mut pool, &xp, ExecCtx::eval(), 1e-3).unwrap();
        assert!(rp.passes(TOL), "{rp:?}");

        let mut gap = GlobalAvgPool::new();
        let rg = check_input_gradient(&mut gap, &xp, ExecCtx::eval(), EPS).unwrap();
        assert!(rg.passes(TOL), "{rg:?}");
    }

    #[test]
    fn deep_stack_gradients() {
        // A realistic micro conv-net: conv → bn → relu → pool → flatten → fc.
        let mut rng = rng_from_seed(11);
        let mut model = Sequential::new(vec![
            Box::new(Conv2d::new(1, 4, Conv2dConfig::same3x3(), &mut rng).unwrap()),
            Box::new(BatchNorm2d::new(4)),
            Box::new(Relu::new()),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Flatten::new()),
            Box::new(Linear::new(4 * 3 * 3, 3, &mut rng).unwrap()),
        ]);
        // Warm up running stats so Eval mode is meaningful.
        model
            .forward(&smooth_input(&[4, 1, 6, 6], 12), ExecCtx::train())
            .unwrap();
        let x = smooth_input(&[2, 1, 6, 6], 13);
        let rin = check_input_gradient(&mut model, &x, ExecCtx::eval(), EPS).unwrap();
        assert!(rin.passes(TOL), "{rin:?}");
        let rp = check_param_gradients(&mut model, &x, ExecCtx::eval(), EPS).unwrap();
        assert!(rp.passes(TOL), "{rp:?}");
    }
}
