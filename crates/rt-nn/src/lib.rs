//! Neural-network building blocks with explicit, layer-local backpropagation.
//!
//! Instead of a general autodiff tape, every [`Layer`] caches what its own
//! backward pass needs during [`Layer::forward`] and implements
//! [`Layer::backward`] by hand. This keeps the substrate small, auditable,
//! and fast on a single CPU core — and it returns exact gradients with
//! respect to the *input*, which is precisely what the adversarial attacks
//! in `rt-adv` consume.
//!
//! The crate provides:
//!
//! * [`Param`]: a trainable tensor bundling data, gradient, momentum buffer,
//!   an optional pruning mask, and the frozen-copy/score machinery used by
//!   learnable-mask pruning (LMP).
//! * [`Layer`]: the object-safe forward/backward trait, plus [`Sequential`].
//! * Concrete layers in [`layers`]: `Conv2d`, `Linear`, `BatchNorm2d`,
//!   `Relu`, `MaxPool2d`, `GlobalAvgPool`, `Flatten`, `Identity`.
//! * [`loss`]: fused softmax cross-entropy (with optional label smoothing)
//!   and mean-squared error, each returning the loss *and* the logit
//!   gradient.
//! * [`optim`]: SGD with momentum/weight-decay that re-applies pruning masks
//!   after every step, plus LR schedules in [`schedule`].
//! * [`ActCache`]: the frozen-prefix activation cache (checksum-keyed,
//!   LRU-capped) that lets finetuning skip a frozen backbone prefix after
//!   the first epoch, bit-identically.
//! * [`checkpoint`]: state-dict save/load.
//! * [`gradcheck`]: finite-difference gradient verification used throughout
//!   the workspace's test suites.
//!
//! # Example
//!
//! ```rust
//! use rt_nn::layers::{Linear, Relu};
//! use rt_nn::{loss::CrossEntropyLoss, optim::Sgd, ExecCtx, Layer, Sequential};
//! use rt_tensor::rng::SeedStream;
//! use rt_tensor::Tensor;
//!
//! # fn main() -> Result<(), rt_nn::NnError> {
//! let seeds = SeedStream::new(0);
//! let mut model = Sequential::new(vec![
//!     Box::new(Linear::new(4, 8, &mut seeds.child("l1").rng())?),
//!     Box::new(Relu::new()),
//!     Box::new(Linear::new(8, 3, &mut seeds.child("l2").rng())?),
//! ]);
//! let x = Tensor::ones(&[2, 4]);
//! let ctx = ExecCtx::train();
//! let logits = model.forward(&x, ctx)?;
//! let loss = CrossEntropyLoss::new();
//! let out = loss.forward(&logits, &[0, 2])?;
//! model.backward(&out.grad, ctx)?;
//! Sgd::new(0.1).step(&mut model)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actcache;
mod error;
mod layer;
mod param;

pub mod checkpoint;
pub mod gradcheck;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod schedule;

pub use actcache::{
    act_cache_default_mb, prefix_fingerprint, set_act_cache_default_mb, ActCache,
};
pub use error::{NnError, Rejected, RtError};
pub use layer::{set_sparse_exec_default, sparse_exec_default, ExecCtx, Layer, Mode, Sequential};
pub use param::{Param, ParamKind};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, NnError>;
