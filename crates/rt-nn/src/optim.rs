//! Optimizers. The paper's finetuning protocol uses SGD with momentum 0.9
//! and weight decay 1e-4; [`Sgd`] implements exactly that, with two
//! pruning-aware details:
//!
//! 1. gradients at masked positions are zeroed before the update, and
//! 2. the mask is re-applied to the weights after the update,
//!
//! so pruned weights stay *exactly* zero throughout training.
//!
//! When a parameter carries a compiled sparse plan (see
//! [`crate::Param::set_mask`]), [`Sgd`] iterates only the plan's live
//! indices instead of scanning the full buffers. Because pruned positions
//! of `data`/`grad`/`velocity` are invariantly exact `+0.0`, the dense
//! scan is a no-op there (`v = μ·0 + 0 = 0`, `d -= lr·0`), so the sparse
//! step is bit-identical and the final `apply_mask` becomes redundant.

use crate::{ExecCtx, Layer, NnError, ParamKind, Result};

/// Stochastic gradient descent with momentum and decoupled weight decay.
///
/// Weight decay is applied only to [`ParamKind::Weight`] parameters
/// (biases and BatchNorm affines are exempt, the standard recipe).
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
}

impl Sgd {
    /// Plain SGD with the given learning rate (no momentum, no decay).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// Returns a copy with momentum `mu` (classic heavy-ball).
    ///
    /// # Panics
    ///
    /// Panics if `mu` is outside `[0, 1)`.
    pub fn with_momentum(mut self, mu: f32) -> Self {
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0, 1)");
        self.momentum = mu;
        self
    }

    /// Returns a copy with L2 weight decay `wd` on weight parameters.
    ///
    /// # Panics
    ///
    /// Panics if `wd` is negative.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }

    /// The paper's finetuning recipe: momentum 0.9, weight decay 1e-4.
    pub fn paper_recipe(lr: f32) -> Self {
        Sgd::new(lr).with_momentum(0.9).with_weight_decay(1e-4)
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (used by LR schedules between epochs).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `lr` is not finite and positive.
    pub fn set_lr(&mut self, lr: f32) -> Result<()> {
        if !(lr.is_finite() && lr > 0.0) {
            return Err(NnError::InvalidConfig {
                detail: format!("learning rate must be positive, got {lr}"),
            });
        }
        self.lr = lr;
        Ok(())
    }

    /// Applies one update step to every trainable parameter of `model`,
    /// then zeroes the gradients.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (which indicate an internal
    /// inconsistency between a parameter and its buffers).
    pub fn step(&self, model: &mut dyn Layer) -> Result<()> {
        for p in model.params_mut() {
            if !p.trainable {
                p.zero_grad();
                continue;
            }
            p.mask_grad();
            let wd = if p.kind == ParamKind::Weight {
                self.weight_decay
            } else {
                0.0
            };
            let mu = self.momentum;
            let lr = self.lr;
            let sparse_plan = p
                .plan
                .clone()
                .filter(|plan| !plan.is_dense() && plan.dims.len() == p.len());
            if let Some(plan) = sparse_plan {
                // Masked fast path: only live entries can change (pruned
                // positions hold exact +0.0 in data/grad/velocity, so the
                // dense scan is a no-op there). Bit-identical to the
                // full scan, and the mask needs no re-application.
                let d = p.data.data_mut();
                let g = p.grad.data();
                let v = p.velocity.data_mut();
                for &i in &plan.live_idx {
                    let i = i as usize;
                    let grad = g[i] + wd * d[i];
                    v[i] = mu * v[i] + grad;
                    d[i] -= lr * v[i];
                }
            } else {
                for ((d, g), v) in p
                    .data
                    .data_mut()
                    .iter_mut()
                    .zip(p.grad.data())
                    .zip(p.velocity.data_mut())
                {
                    let grad = g + wd * *d;
                    *v = mu * *v + grad;
                    *d -= lr * *v;
                }
                p.apply_mask();
            }
            p.zero_grad();
        }
        Ok(())
    }
}

/// Clips the global L2 norm of every trainable parameter's gradient to
/// `max_norm`, returning the pre-clip norm. A standard stabilizer for the
/// adversarial training loops (large PGD ε occasionally produces gradient
/// spikes on the micro-models).
///
/// # Panics
///
/// Panics if `max_norm` is not finite and positive.
pub fn clip_grad_norm(model: &mut dyn Layer, max_norm: f32) -> f32 {
    assert!(
        max_norm.is_finite() && max_norm > 0.0,
        "max_norm must be positive"
    );
    let total_sq: f32 = model
        .params()
        .iter()
        .filter(|p| p.trainable)
        .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
        .sum();
    let norm = total_sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for p in model.params_mut() {
            if p.trainable {
                p.grad.scale(scale);
            }
        }
    }
    norm
}

/// Adam optimizer (Kingma & Ba) with pruning-mask awareness, provided as
/// an alternative to the paper's SGD recipe (the `finetune_optimizer`
/// ablation uses it).
///
/// The first/second-moment buffers live in the optimizer, keyed by
/// parameter position, so one `Adam` instance must stay paired with one
/// model.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    moments: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β = (0.9, 0.999),
    /// ε = 1e-8 defaults.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            step_count: 0,
            moments: Vec::new(),
        }
    }

    /// Returns a copy with L2 weight decay on weight parameters.
    ///
    /// # Panics
    ///
    /// Panics if `wd` is negative.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one Adam step to every trainable parameter of `model`, then
    /// zeroes the gradients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateDictMismatch`] if the model's parameter
    /// structure changed between steps (the moment buffers would no longer
    /// correspond).
    pub fn step(&mut self, model: &mut dyn Layer) -> Result<()> {
        let params = model.params_mut();
        if self.moments.is_empty() {
            self.moments = params
                .iter()
                .map(|p| (vec![0.0; p.len()], vec![0.0; p.len()]))
                .collect();
        }
        if self.moments.len() != params.len()
            || self
                .moments
                .iter()
                .zip(&params)
                .any(|((m, _), p)| m.len() != p.len())
        {
            return Err(NnError::StateDictMismatch {
                detail: "model structure changed under an Adam instance".to_string(),
            });
        }
        self.step_count += 1;
        let bias1 = 1.0 - self.beta1.powi(self.step_count as i32);
        let bias2 = 1.0 - self.beta2.powi(self.step_count as i32);
        for (p, (m, v)) in params.into_iter().zip(&mut self.moments) {
            if !p.trainable {
                p.zero_grad();
                continue;
            }
            p.mask_grad();
            let wd = if p.kind == ParamKind::Weight {
                self.weight_decay
            } else {
                0.0
            };
            for (((d, g), mi), vi) in p
                .data
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                let grad = g + wd * *d;
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * grad;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * grad * grad;
                let m_hat = *mi / bias1;
                let v_hat = *vi / bias2;
                *d -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            p.apply_mask();
            p.zero_grad();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Linear;
    use crate::Sequential;
    use rt_tensor::rng::rng_from_seed;
    use rt_tensor::Tensor;

    fn toy_model() -> Sequential {
        let mut rng = rng_from_seed(0);
        Sequential::new(vec![Box::new(Linear::new(2, 1, &mut rng).unwrap())])
    }

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut model = toy_model();
        let before = model.params()[0].data.clone();
        model.params_mut()[0].grad.fill(1.0);
        Sgd::new(0.5).step(&mut model).unwrap();
        let after = &model.params()[0].data;
        for (b, a) in before.data().iter().zip(after.data()) {
            assert!((b - 0.5 - a).abs() < 1e-6);
        }
        // Gradients are zeroed after the step.
        assert_eq!(model.params()[0].grad.sum(), 0.0);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut model = toy_model();
        let opt = Sgd::new(0.1).with_momentum(0.9);
        let w0 = model.params()[0].data.data()[0];
        model.params_mut()[0].grad.fill(1.0);
        opt.step(&mut model).unwrap();
        let w1 = model.params()[0].data.data()[0];
        model.params_mut()[0].grad.fill(1.0);
        opt.step(&mut model).unwrap();
        let w2 = model.params()[0].data.data()[0];
        // Second step is larger: v2 = 0.9·v1 + 1 = 1.9.
        let step1 = w0 - w1;
        let step2 = w1 - w2;
        assert!((step1 - 0.1).abs() < 1e-6);
        assert!((step2 - 0.19).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights_not_biases() {
        let mut model = toy_model();
        // Zero gradient: only decay acts.
        let w0 = model.params()[0].data.data()[0];
        let b0 = model.params()[1].data.data()[0];
        Sgd::new(1.0)
            .with_weight_decay(0.1)
            .step(&mut model)
            .unwrap();
        let w1 = model.params()[0].data.data()[0];
        let b1 = model.params()[1].data.data()[0];
        assert!((w1 - w0 * 0.9).abs() < 1e-6, "weight decays");
        assert_eq!(b0, b1, "bias is exempt from decay");
    }

    #[test]
    fn masked_weights_stay_zero_through_updates() {
        let mut model = toy_model();
        let mask = Tensor::from_vec(vec![1, 2], vec![1.0, 0.0]).unwrap();
        model.params_mut()[0].set_mask(mask).unwrap();
        let opt = Sgd::new(0.1).with_momentum(0.9).with_weight_decay(0.01);
        for _ in 0..5 {
            // Simulate a training step with a dense gradient.
            model.params_mut()[0].grad.fill(3.0);
            opt.step(&mut model).unwrap();
            assert_eq!(
                model.params()[0].data.data()[1],
                0.0,
                "pruned weight must remain exactly zero"
            );
            assert_ne!(model.params()[0].data.data()[0], 0.0);
        }
    }

    #[test]
    fn sgd_sparse_fast_path_is_bit_identical_to_dense_scan() {
        let mask = Tensor::from_vec(vec![1, 2], vec![1.0, 0.0]).unwrap();
        let mut fast = toy_model();
        fast.params_mut()[0].set_mask(mask.clone()).unwrap();
        let mut dense = toy_model();
        dense.params_mut()[0].set_mask(mask).unwrap();
        // Dropping the plan forces the full-scan path (mask stays).
        dense.params_mut()[0].plan = None;
        let opt = Sgd::new(0.1).with_momentum(0.9).with_weight_decay(0.01);
        for step in 0..4 {
            for m in [&mut fast, &mut dense] {
                m.params_mut()[0]
                    .grad
                    .fill(1.5 - step as f32 * 0.7 /* sign flips */);
            }
            opt.step(&mut fast).unwrap();
            opt.step(&mut dense).unwrap();
            for (f, d) in [0usize, 1].iter().map(|&i| {
                (
                    fast.params()[i].data.data().to_vec(),
                    dense.params()[i].data.data().to_vec(),
                )
            }) {
                for (a, b) in f.iter().zip(&d) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            for (a, b) in fast.params()[0]
                .velocity
                .data()
                .iter()
                .zip(dense.params()[0].velocity.data())
            {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            // Pruned slot is exact +0.0 on both paths.
            assert_eq!(fast.params()[0].data.data()[1].to_bits(), 0);
        }
    }

    #[test]
    fn frozen_params_are_skipped() {
        let mut model = toy_model();
        model.params_mut()[0].trainable = false;
        let before = model.params()[0].data.clone();
        model.params_mut()[0].grad.fill(1.0);
        Sgd::new(0.5).step(&mut model).unwrap();
        assert_eq!(model.params()[0].data, before);
    }

    #[test]
    fn end_to_end_loss_decreases() {
        // Fit y = x0 - x1 with a linear model; loss must drop monotonically
        // enough to halve within 50 steps.
        use crate::loss::MseLoss;
        let mut model = toy_model();
        let opt = Sgd::new(0.1).with_momentum(0.9);
        let x =
            Tensor::from_vec(vec![4, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0]).unwrap();
        let y = Tensor::from_vec(vec![4, 1], vec![1.0, -1.0, 0.0, 3.0]).unwrap();
        let loss_fn = MseLoss::new();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..50 {
            let pred = model.forward(&x, ExecCtx::train()).unwrap();
            let out = loss_fn.forward(&pred, &y).unwrap();
            model.backward(&out.grad, ExecCtx::default()).unwrap();
            opt.step(&mut model).unwrap();
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(last < first.unwrap() * 0.5, "{last} vs {first:?}");
    }

    #[test]
    fn clip_grad_norm_rescales_only_when_needed() {
        let mut model = toy_model();
        // Gradient vector (1,1) on weights + (1) on bias → norm sqrt(3).
        for p in model.params_mut() {
            p.grad.fill(1.0);
        }
        let norm = clip_grad_norm(&mut model, 10.0);
        assert!((norm - 3.0f32.sqrt()).abs() < 1e-5);
        // Under the threshold: untouched.
        assert_eq!(model.params()[0].grad.data()[0], 1.0);

        let norm2 = clip_grad_norm(&mut model, 0.5);
        assert!((norm2 - 3.0f32.sqrt()).abs() < 1e-5);
        // Rescaled to exactly max_norm.
        let total_sq: f32 = model
            .params()
            .iter()
            .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
            .sum();
        assert!((total_sq.sqrt() - 0.5).abs() < 1e-5);
    }

    #[test]
    fn clip_ignores_frozen_params() {
        let mut model = toy_model();
        for p in model.params_mut() {
            p.grad.fill(10.0);
        }
        model.params_mut()[1].trainable = false;
        clip_grad_norm(&mut model, 1.0);
        // Frozen bias keeps its raw gradient.
        assert_eq!(model.params()[1].grad.data()[0], 10.0);
        assert!(model.params()[0].grad.data()[0] < 10.0);
    }

    #[test]
    fn adam_reduces_loss_on_toy_regression() {
        use crate::loss::MseLoss;
        use crate::Layer as _;
        let mut model = toy_model();
        let mut opt = Adam::new(0.05);
        let x =
            Tensor::from_vec(vec![4, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, -1.0]).unwrap();
        let y = Tensor::from_vec(vec![4, 1], vec![1.0, -1.0, 0.0, 3.0]).unwrap();
        let loss_fn = MseLoss::new();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let pred = model.forward(&x, ExecCtx::train()).unwrap();
            let out = loss_fn.forward(&pred, &y).unwrap();
            model.backward(&out.grad, ExecCtx::default()).unwrap();
            opt.step(&mut model).unwrap();
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(last < first.unwrap() * 0.5, "{first:?} -> {last}");
    }

    #[test]
    fn adam_respects_masks_and_frozen_params() {
        let mut model = toy_model();
        let mask = Tensor::from_vec(vec![1, 2], vec![1.0, 0.0]).unwrap();
        model.params_mut()[0].set_mask(mask).unwrap();
        let mut opt = Adam::new(0.1);
        for _ in 0..3 {
            model.params_mut()[0].grad.fill(2.0);
            opt.step(&mut model).unwrap();
            assert_eq!(model.params()[0].data.data()[1], 0.0);
        }
        // Freezing stops updates.
        let w = model.params()[0].data.data()[0];
        model.params_mut()[0].trainable = false;
        model.params_mut()[0].grad.fill(2.0);
        opt.step(&mut model).unwrap();
        assert_eq!(model.params()[0].data.data()[0], w);
    }

    #[test]
    fn adam_first_step_size_is_lr() {
        // With bias correction, the first Adam step is ≈ lr·sign(grad).
        let mut model = toy_model();
        let w0 = model.params()[0].data.data()[0];
        let mut opt = Adam::new(0.01);
        model.params_mut()[0].grad.fill(3.0);
        opt.step(&mut model).unwrap();
        let w1 = model.params()[0].data.data()[0];
        assert!(((w0 - w1) - 0.01).abs() < 1e-4, "step {}", w0 - w1);
    }

    #[test]
    fn adam_detects_structure_change() {
        let mut m1 = toy_model();
        let mut opt = Adam::new(0.01);
        opt.step(&mut m1).unwrap();
        let mut rng = rng_from_seed(9);
        let mut m2 = Sequential::new(vec![Box::new(Linear::new(5, 2, &mut rng).unwrap())]);
        assert!(opt.step(&mut m2).is_err());
    }

    #[test]
    fn set_lr_validates() {
        let mut opt = Sgd::new(0.1);
        assert!(opt.set_lr(0.05).is_ok());
        assert_eq!(opt.lr(), 0.05);
        assert!(opt.set_lr(0.0).is_err());
        assert!(opt.set_lr(f32::NAN).is_err());
    }

    #[test]
    fn steady_state_training_step_reuses_pool_buffers() {
        use crate::layers::{Conv2d, Conv2dConfig, Flatten, Relu};
        use crate::loss::CrossEntropyLoss;
        use rt_tensor::{init, pool};

        // 1 pool thread runs every task inline on this thread, so the
        // thread-local lease counters see the whole step (the process-wide
        // counters would race with other tests).
        rt_par::set_threads(1);
        pool::set_enabled(true); // the property needs recycling on, whatever RT_POOL says
        let mut rng = rng_from_seed(42);
        let mut model = Sequential::new(vec![
            Box::new(Conv2d::new(3, 8, Conv2dConfig::same3x3(), &mut rng).unwrap()),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(8 * 8 * 8, 10, &mut rng).unwrap()),
        ]);
        let x = init::normal(&[4, 3, 8, 8], 0.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 3];
        let loss = CrossEntropyLoss::new();
        let opt = Sgd::new(0.01);
        let step = |model: &mut Sequential| {
            let out = model.forward(&x, ExecCtx::train()).unwrap();
            let l = loss.forward(&out, &labels).unwrap();
            model.backward(&l.grad, ExecCtx::train()).unwrap();
            opt.step(model).unwrap();
        };
        step(&mut model); // warm the pool: every buffer size gets cached
        pool::reset_thread_stats();
        // Two full epochs of steps, not just one step: the zero-alloc
        // guarantee must hold across epoch boundaries (the epoch loop
        // reuses the same buffer sizes batch after batch, epoch after
        // epoch).
        for _epoch in 0..2 {
            for _batch in 0..3 {
                step(&mut model);
            }
        }
        let stats = pool::thread_stats();
        assert!(
            stats.hits > 0,
            "the hot path must lease its scratch from the pool"
        );
        assert_eq!(
            stats.misses, 0,
            "steady-state training epochs allocated fresh pool buffers"
        );
    }
}
