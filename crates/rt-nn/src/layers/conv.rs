use crate::{ExecCtx, Layer, NnError, Param, ParamKind, Result};
use rand::Rng;
use rt_sparse::SparsePlan;
use rt_tensor::conv::{
    conv2d_backward_planned, conv2d_forward_fused, conv2d_forward_planned, ConvGeometry,
};
use rt_tensor::{init, Tensor, TensorError};
use std::sync::Arc;

/// Configuration of a [`Conv2d`] layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dConfig {
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding applied to each border.
    pub padding: usize,
    /// Whether the layer has a bias term. Convolutions followed by
    /// BatchNorm conventionally omit it.
    pub bias: bool,
}

impl Conv2dConfig {
    /// A 3×3 "same" convolution (stride 1, padding 1, no bias) — the
    /// ResNet workhorse.
    pub fn same3x3() -> Self {
        Conv2dConfig {
            kernel: 3,
            stride: 1,
            padding: 1,
            bias: false,
        }
    }

    /// A 1×1 convolution (projection), no bias.
    pub fn pointwise() -> Self {
        Conv2dConfig {
            kernel: 1,
            stride: 1,
            padding: 0,
            bias: false,
        }
    }

    /// Returns a copy with a different stride.
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Returns a copy with bias enabled/disabled.
    pub fn with_bias(mut self, bias: bool) -> Self {
        self.bias = bias;
        self
    }
}

impl Default for Conv2dConfig {
    fn default() -> Self {
        Conv2dConfig::same3x3()
    }
}

/// 2-D convolution over NCHW activations, lowered to matrix multiplication
/// via `im2col`.
///
/// Weight layout is `[out_channels, in_channels, k, k]`; the forward pass
/// views it as an `[O, C·k·k]` matrix. The backward pass recomputes the
/// `im2col` lowering instead of caching it, trading a little compute for a
/// large memory saving.
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    geo: ConvGeometry,
    in_channels: usize,
    out_channels: usize,
    cache: Option<ConvCache>,
}

struct ConvCache {
    input: Tensor,
    h_out: usize,
    w_out: usize,
}

impl Conv2d {
    /// Creates a convolution with Kaiming-normal weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero channels or kernel.
    pub fn new<R: Rng>(
        in_channels: usize,
        out_channels: usize,
        config: Conv2dConfig,
        rng: &mut R,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || config.kernel == 0 || config.stride == 0 {
            return Err(NnError::InvalidConfig {
                detail: format!(
                    "conv2d needs non-zero channels/kernel/stride, got in={in_channels} \
                     out={out_channels} k={} s={}",
                    config.kernel, config.stride
                ),
            });
        }
        let k = config.kernel;
        let fan_in = in_channels * k * k;
        let weight = Param::new(
            "conv.weight",
            init::kaiming_normal(&[out_channels, in_channels, k, k], fan_in, rng),
            ParamKind::Weight,
        );
        let bias = config
            .bias
            .then(|| Param::new("conv.bias", Tensor::zeros(&[out_channels]), ParamKind::Bias));
        Ok(Conv2d {
            weight,
            bias,
            geo: ConvGeometry::new(k, config.stride, config.padding),
            in_channels,
            out_channels,
            cache: None,
        })
    }

    /// The convolution geometry (kernel/stride/padding).
    pub fn geometry(&self) -> ConvGeometry {
        self.geo
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    fn weight_matrix(&self) -> Result<Tensor> {
        let k = self.geo.kernel;
        Ok(self
            .weight
            .data
            .reshape(&[self.out_channels, self.in_channels * k * k])?)
    }

    /// The weight's compiled sparse plan, if sparse execution applies.
    /// Non-dense plans only; the planned conv entry points re-validate the
    /// plan against the lowered `[O, C·k·k]` matrix and silently fall back
    /// to dense on any mismatch.
    fn active_plan(&self, ctx: ExecCtx) -> Option<Arc<SparsePlan>> {
        if !ctx.sparse {
            return None;
        }
        self.weight.plan.clone().filter(|p| !p.is_dense())
    }
}

impl std::fmt::Debug for Conv2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conv2d")
            .field("in_channels", &self.in_channels)
            .field("out_channels", &self.out_channels)
            .field("geometry", &self.geo)
            .field("bias", &self.bias.is_some())
            .finish()
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        if input.ndim() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: input.ndim(),
                op: "conv2d.forward",
            }
            .into());
        }
        let [n, c, h, w] = [
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        ];
        if c != self.in_channels {
            return Err(TensorError::ShapeMismatch {
                lhs: input.shape().to_vec(),
                rhs: vec![n, self.in_channels, h, w],
                op: "conv2d.forward",
            }
            .into());
        }
        let h_out = self.geo.out_dim(h)?;
        let w_out = self.geo.out_dim(w)?;
        let w_mat = self.weight_matrix()?;
        // Per-sample im2col + gemm fan-out runs on the rt-par pool; results
        // are bit-identical to the serial loop for every thread count, and
        // (when a sparse plan is active) to the dense masked lowering.
        let plan = self.active_plan(ctx);
        let t0 = super::exec_timer();
        let out = conv2d_forward_planned(
            input,
            &w_mat,
            self.bias.as_ref().map(|b| b.data.data()),
            self.geo,
            plan.as_deref(),
        )?;
        // Lowered GEMM batch dim: one unit per output pixel per sample.
        let units = n * h_out * w_out;
        let weight_len = self.weight.data.data().len();
        let col = weight_len / self.out_channels; // C·k·k patch width
        super::observe_exec(
            &self.weight.name,
            plan.as_deref(),
            units,
            1,
            weight_len,
            units * (col + self.out_channels),
            t0,
        );
        self.cache = Some(ConvCache {
            input: input.clone(),
            h_out,
            w_out,
        });
        Ok(out)
    }

    fn forward_relu_fused(&mut self, input: &Tensor, ctx: ExecCtx) -> Option<Result<Tensor>> {
        // Eval-only `conv → ReLU` fusion: the planned conv entry point
        // applies the ReLU in the GEMM store epilogue (fast arm) or as an
        // in-place pass over the freshly written output (sparse/legacy
        // arms) — both bit-identical to running the activation after.
        // Train mode and invalid shapes fall back to the plain pair so
        // error reporting and backward caches stay on the ordinary path.
        if ctx.is_train() || input.ndim() != 4 || input.shape()[1] != self.in_channels {
            return None;
        }
        let [n, h, w] = [input.shape()[0], input.shape()[2], input.shape()[3]];
        let (h_out, w_out) = match (self.geo.out_dim(h), self.geo.out_dim(w)) {
            (Ok(h_out), Ok(w_out)) => (h_out, w_out),
            _ => return None,
        };
        let w_mat = match self.weight_matrix() {
            Ok(m) => m,
            Err(_) => return None,
        };
        let plan = self.active_plan(ctx);
        let t0 = super::exec_timer();
        let out = match conv2d_forward_fused(
            input,
            &w_mat,
            self.bias.as_ref().map(|b| b.data.data()),
            self.geo,
            plan.as_deref(),
            true,
        ) {
            Ok(out) => out,
            Err(e) => return Some(Err(e.into())),
        };
        let units = n * h_out * w_out;
        let weight_len = self.weight.data.data().len();
        let col = weight_len / self.out_channels;
        super::observe_exec(
            &self.weight.name,
            plan.as_deref(),
            units,
            1,
            weight_len,
            units * (col + self.out_channels),
            t0,
        );
        self.cache = Some(ConvCache {
            input: input.clone(),
            h_out,
            w_out,
        });
        Some(Ok(out))
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Conv2d" })?;
        let (h_out, w_out) = (cache.h_out, cache.w_out);
        let n = cache.input.shape()[0];
        let o = self.out_channels;
        if grad_output.shape() != [n, o, h_out, w_out] {
            return Err(TensorError::ShapeMismatch {
                lhs: grad_output.shape().to_vec(),
                rhs: vec![n, o, h_out, w_out],
                op: "conv2d.backward",
            }
            .into());
        }
        let w_mat = self.weight_matrix()?;
        // Per-sample backward fan-out on the rt-par pool; weight/bias
        // partials are folded in sample order, so gradients match the old
        // serial loop bit-for-bit.
        let plan = self.active_plan(ctx);
        let t0 = super::exec_timer();
        let (grad_input, grad_w_mat, grad_bias) = conv2d_backward_planned(
            &cache.input,
            grad_output,
            &w_mat,
            self.geo,
            self.bias.is_some(),
            plan.as_deref(),
        )?;
        let units = n * h_out * w_out;
        let weight_len = self.weight.data.data().len();
        let col = weight_len / self.out_channels;
        super::observe_exec(
            &self.weight.name,
            plan.as_deref(),
            units,
            2,
            weight_len,
            units * (col + self.out_channels),
            t0,
        );
        // Accumulate into the [O, C, k, k] gradient (identical flat layout).
        for (dst, &src) in self
            .weight
            .grad
            .data_mut()
            .iter_mut()
            .zip(grad_w_mat.data())
        {
            *dst += src;
        }
        if let (Some(bias), Some(gb)) = (&mut self.bias, grad_bias) {
            for (dst, src) in bias.grad.data_mut().iter_mut().zip(gb) {
                *dst += src;
            }
        }
        Ok(grad_input)
    }

    fn params(&self) -> Vec<&Param> {
        let mut v = vec![&self.weight];
        if let Some(b) = &self.bias {
            v.push(b);
        }
        v
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut v = vec![&mut self.weight];
        if let Some(b) = &mut self.bias {
            v.push(b);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_tensor::rng::rng_from_seed;

    #[test]
    fn forward_shapes() {
        let mut rng = rng_from_seed(0);
        let mut conv = Conv2d::new(3, 8, Conv2dConfig::same3x3(), &mut rng).unwrap();
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let y = conv.forward(&x, ExecCtx::train()).unwrap();
        assert_eq!(y.shape(), &[2, 8, 8, 8]);

        let mut strided =
            Conv2d::new(3, 4, Conv2dConfig::same3x3().with_stride(2), &mut rng).unwrap();
        let y2 = strided.forward(&x, ExecCtx::train()).unwrap();
        assert_eq!(y2.shape(), &[2, 4, 4, 4]);
    }

    #[test]
    fn pointwise_is_channel_mix() {
        let mut rng = rng_from_seed(1);
        let mut conv = Conv2d::new(2, 1, Conv2dConfig::pointwise(), &mut rng).unwrap();
        // Set weight to [1, 2]: output = 1*ch0 + 2*ch1.
        conv.weight.data = Tensor::from_vec(vec![1, 2, 1, 1], vec![1.0, 2.0]).unwrap();
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![1.0, 2.0, 10.0, 20.0]).unwrap();
        let y = conv.forward(&x, ExecCtx::eval()).unwrap();
        assert_eq!(y.data(), &[21.0, 42.0]);
    }

    #[test]
    fn known_3x3_convolution_value() {
        let mut rng = rng_from_seed(2);
        let mut conv = Conv2d::new(1, 1, Conv2dConfig::same3x3(), &mut rng).unwrap();
        conv.weight.data = Tensor::ones(&[1, 1, 3, 3]);
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv.forward(&x, ExecCtx::eval()).unwrap();
        // Sum of the window at each position; corners see 4 ones.
        assert_eq!(y.data(), &[4.0, 6.0, 4.0, 6.0, 9.0, 6.0, 4.0, 6.0, 4.0]);
    }

    #[test]
    fn bias_is_added_per_channel() {
        let mut rng = rng_from_seed(3);
        let mut conv =
            Conv2d::new(1, 2, Conv2dConfig::pointwise().with_bias(true), &mut rng).unwrap();
        conv.weight.data.fill(0.0);
        if let Some(b) = &mut conv.bias {
            b.data = Tensor::from_vec(vec![2], vec![1.5, -2.5]).unwrap();
        }
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let y = conv.forward(&x, ExecCtx::eval()).unwrap();
        assert_eq!(y.data()[..4], [1.5; 4]);
        assert_eq!(y.data()[4..], [-2.5; 4]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = rng_from_seed(4);
        let mut conv = Conv2d::new(1, 1, Conv2dConfig::same3x3(), &mut rng).unwrap();
        let err = conv.backward(&Tensor::zeros(&[1, 1, 3, 3]), ExecCtx::default()).unwrap_err();
        assert!(matches!(err, NnError::BackwardBeforeForward { .. }));
    }

    #[test]
    fn backward_shapes_and_accumulation() {
        let mut rng = rng_from_seed(5);
        let mut conv =
            Conv2d::new(2, 3, Conv2dConfig::same3x3().with_bias(true), &mut rng).unwrap();
        let x = Tensor::ones(&[2, 2, 4, 4]);
        let y = conv.forward(&x, ExecCtx::train()).unwrap();
        let g1 = conv.backward(&Tensor::ones(y.shape()), ExecCtx::default()).unwrap();
        assert_eq!(g1.shape(), x.shape());
        let w_grad_after_one = conv.params()[0].grad.clone();
        conv.forward(&x, ExecCtx::train()).unwrap();
        conv.backward(&Tensor::ones(y.shape()), ExecCtx::default()).unwrap();
        let w_grad_after_two = &conv.params()[0].grad;
        // Gradients accumulate across backward calls.
        for (a, b) in w_grad_after_one.data().iter().zip(w_grad_after_two.data()) {
            assert!((2.0 * a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn sparse_conv_execution_is_bit_identical_to_masked_dense() {
        let (c, o) = (3usize, 4usize);
        // Channel-structured mask: input channel 1 pruned everywhere, plus
        // output channel 3 fully pruned → Compact plan with dead rows and
        // a dead column group.
        let mut mask = Tensor::ones(&[o, c, 3, 3]);
        for oc in 0..o {
            for k in 0..9 {
                mask.data_mut()[oc * c * 9 + 9 + k] = 0.0;
            }
        }
        for j in 0..c * 9 {
            mask.data_mut()[3 * c * 9 + j] = 0.0;
        }
        let mk_layer = |mask: &Tensor| {
            let mut rng = rng_from_seed(7);
            let mut conv =
                Conv2d::new(c, o, Conv2dConfig::same3x3().with_bias(true), &mut rng).unwrap();
            conv.weight.set_mask(mask.clone()).unwrap();
            conv
        };
        let mut sparse = mk_layer(&mask);
        let mut dense = mk_layer(&mask);
        assert!(sparse.weight.plan.is_some());
        let x = Tensor::from_fn(&[2, c, 5, 5], |i| ((i % 11) as f32 - 5.0) * 0.2);
        let ctx_s = ExecCtx::train().with_sparse(true);
        let ctx_d = ExecCtx::train().with_sparse(false);
        let ys = sparse.forward(&x, ctx_s).unwrap();
        let yd = dense.forward(&x, ctx_d).unwrap();
        for (a, b) in ys.data().iter().zip(yd.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "forward diverged");
        }
        let dy = Tensor::from_fn(ys.shape(), |i| ((i % 9) as f32 - 4.0) * 0.3);
        let gs = sparse.backward(&dy, ctx_s).unwrap();
        let gd = dense.backward(&dy, ctx_d).unwrap();
        for (a, b) in gs.data().iter().zip(gd.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "input grad diverged");
        }
        sparse.weight.mask_grad();
        dense.weight.mask_grad();
        for (a, b) in sparse
            .weight
            .grad
            .data()
            .iter()
            .zip(dense.weight.grad.data())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "weight grad diverged");
        }
        let (bs, bd) = (sparse.bias.as_ref().unwrap(), dense.bias.as_ref().unwrap());
        for (a, b) in bs.grad.data().iter().zip(bd.grad.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "bias grad diverged");
        }
    }

    /// Eval-mode `conv → ReLU` fusion must match the plain forward
    /// followed by a ReLU, bit-for-bit, on every plan kind.
    #[test]
    fn fused_relu_matches_plain_forward() {
        let mut rng = rng_from_seed(8);
        let mut conv =
            Conv2d::new(3, 8, Conv2dConfig::same3x3().with_bias(true), &mut rng).unwrap();
        let x = Tensor::from_fn(&[2, 3, 12, 12], |i| ((i % 13) as f32 - 6.0) * 0.25);
        let want = conv
            .forward(&x, ExecCtx::eval())
            .unwrap()
            .map(|v| v.max(0.0));
        let got = conv
            .forward_relu_fused(&x, ExecCtx::eval())
            .expect("conv always has a fused eval path")
            .unwrap();
        assert_eq!(got.shape(), want.shape());
        for (a, b) in got.data().iter().zip(want.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "fused conv relu diverged");
        }
        // Train mode must refuse so ReLU's backward cache gets written.
        assert!(conv.forward_relu_fused(&x, ExecCtx::train()).is_none());
    }

    #[test]
    fn rejects_wrong_channels() {
        let mut rng = rng_from_seed(6);
        let mut conv = Conv2d::new(3, 4, Conv2dConfig::same3x3(), &mut rng).unwrap();
        assert!(conv
            .forward(&Tensor::ones(&[1, 2, 4, 4]), ExecCtx::eval())
            .is_err());
        assert!(conv.forward(&Tensor::ones(&[4, 4]), ExecCtx::eval()).is_err());
    }

    #[test]
    fn invalid_config_rejected() {
        let mut rng = rng_from_seed(7);
        assert!(Conv2d::new(0, 4, Conv2dConfig::same3x3(), &mut rng).is_err());
        let bad = Conv2dConfig {
            kernel: 0,
            stride: 1,
            padding: 0,
            bias: false,
        };
        assert!(Conv2d::new(1, 1, bad, &mut rng).is_err());
    }
}
