use crate::{ExecCtx, Layer, Mode, NnError, Param, Result};
use rt_tensor::rng::{rng_from_seed, SeedStream};
use rt_tensor::{Tensor, TensorError};

/// Inverted dropout: in train mode each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1−p)`, so eval mode is
/// the identity (no rescaling needed at inference).
///
/// The layer owns a deterministic RNG stream (seeded at construction), so
/// training runs remain reproducible without threading an RNG through
/// [`Layer::forward`]. The [`ExecCtx::rng_stream`] id is folded into the
/// per-step seed: the default stream `0` reproduces the layer's own
/// sequence, while distinct streams draw independent masks.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    seeds: SeedStream,
    step: u64,
    mask: Option<Vec<f32>>,
    shape: Vec<usize>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `p` is outside `[0, 1)`.
    pub fn new(p: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::InvalidConfig {
                detail: format!("dropout probability must be in [0, 1), got {p}"),
            });
        }
        Ok(Dropout {
            p,
            seeds: SeedStream::new(seed),
            step: 0,
            mask: None,
            shape: Vec::new(),
        })
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        self.shape = input.shape().to_vec();
        match ctx.mode {
            Mode::Eval => {
                self.mask = None;
                Ok(input.clone())
            }
            Mode::Train => {
                if self.p == 0.0 {
                    self.mask = None;
                    return Ok(input.clone());
                }
                use rand::Rng as _;
                let mut rng =
                    rng_from_seed(self.seeds.child_idx(self.step).seed() ^ ctx.rng_stream);
                self.step += 1;
                let scale = 1.0 / (1.0 - self.p);
                let mask: Vec<f32> = (0..input.len())
                    .map(|_| {
                        if rng.gen::<f32>() < self.p {
                            0.0
                        } else {
                            scale
                        }
                    })
                    .collect();
                let data: Vec<f32> = input
                    .data()
                    .iter()
                    .zip(&mask)
                    .map(|(&x, &m)| x * m)
                    .collect();
                self.mask = Some(mask);
                Ok(Tensor::from_vec(self.shape.clone(), data)?)
            }
        }
    }

    fn backward(&mut self, grad_output: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        if grad_output.shape() != self.shape.as_slice() {
            return Err(TensorError::ShapeMismatch {
                lhs: grad_output.shape().to_vec(),
                rhs: self.shape.clone(),
                op: "dropout.backward",
            }
            .into());
        }
        match &self.mask {
            None => Ok(grad_output.clone()),
            Some(mask) => {
                let data: Vec<f32> = grad_output
                    .data()
                    .iter()
                    .zip(mask)
                    .map(|(&g, &m)| g * m)
                    .collect();
                Ok(Tensor::from_vec(self.shape.clone(), data)?)
            }
        }
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Train-mode dropout draws a fresh mask every call — never cacheable.
    fn forward_is_pure(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 0).unwrap();
        let x = Tensor::from_fn(&[4, 4], |i| i as f32);
        assert_eq!(d.forward(&x, ExecCtx::eval()).unwrap(), x);
        // Backward in eval mode passes gradients through.
        assert_eq!(d.backward(&x, ExecCtx::default()).unwrap(), x);
    }

    #[test]
    fn train_mode_zeroes_roughly_p_fraction_and_rescales() {
        let mut d = Dropout::new(0.25, 1).unwrap();
        let x = Tensor::ones(&[1, 4000]);
        let y = d.forward(&x, ExecCtx::train()).unwrap();
        let zeros = y.count_zeros();
        let frac = zeros as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.05, "dropped {frac}");
        // Survivors are scaled by 4/3; the mean stays ≈ 1 (inverted dropout).
        assert!((y.mean() - 1.0).abs() < 0.05, "mean {}", y.mean());
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.5, 2).unwrap();
        let x = Tensor::ones(&[2, 8]);
        let y = d.forward(&x, ExecCtx::train()).unwrap();
        let g = d.backward(&Tensor::ones(&[2, 8]), ExecCtx::default()).unwrap();
        // Gradient is zero exactly where the activation was dropped.
        for (&yv, &gv) in y.data().iter().zip(g.data()) {
            assert_eq!(yv == 0.0, gv == 0.0);
        }
    }

    #[test]
    fn masks_differ_across_steps_but_runs_are_reproducible() {
        let mut d1 = Dropout::new(0.5, 3).unwrap();
        let x = Tensor::ones(&[1, 64]);
        let a = d1.forward(&x, ExecCtx::train()).unwrap();
        let b = d1.forward(&x, ExecCtx::train()).unwrap();
        assert_ne!(a, b, "fresh mask every step");
        let mut d2 = Dropout::new(0.5, 3).unwrap();
        let a2 = d2.forward(&x, ExecCtx::train()).unwrap();
        assert_eq!(a, a2, "same seed, same sequence");
    }

    #[test]
    fn zero_probability_is_identity_in_train() {
        let mut d = Dropout::new(0.0, 4).unwrap();
        let x = Tensor::from_fn(&[3, 3], |i| i as f32);
        assert_eq!(d.forward(&x, ExecCtx::train()).unwrap(), x);
    }

    #[test]
    fn invalid_probability_rejected() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
    }

    #[test]
    fn rng_stream_selects_independent_masks() {
        let x = Tensor::ones(&[1, 64]);
        let mut d0 = Dropout::new(0.5, 3).unwrap();
        let base = d0.forward(&x, ExecCtx::train()).unwrap();
        let mut d1 = Dropout::new(0.5, 3).unwrap();
        let same = d1.forward(&x, ExecCtx::train().with_stream(0)).unwrap();
        assert_eq!(base, same, "stream 0 reproduces the default sequence");
        let mut d2 = Dropout::new(0.5, 3).unwrap();
        let other = d2.forward(&x, ExecCtx::train().with_stream(41)).unwrap();
        assert_ne!(base, other, "distinct streams draw distinct masks");
    }
}
