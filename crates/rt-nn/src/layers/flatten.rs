use crate::{ExecCtx, Layer, NnError, Param, Result};
use rt_tensor::Tensor;

/// Flattens `[N, d1, d2, …]` into `[N, d1·d2·…]`. Free (a reshape).
#[derive(Debug, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { input_shape: None }
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        let shape = input.shape();
        let n = shape.first().copied().unwrap_or(0);
        let rest: usize = shape.iter().skip(1).product();
        self.input_shape = Some(shape.to_vec());
        Ok(input.reshape(&[n, rest])?)
    }

    fn backward(&mut self, grad_output: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        let shape = self
            .input_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Flatten" })?;
        Ok(grad_output.reshape(shape)?)
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

/// The identity layer. Useful as a placeholder shortcut connection.
#[derive(Debug, Default)]
pub struct Identity;

impl Identity {
    /// Creates an identity layer.
    pub fn new() -> Self {
        Identity
    }
}

impl Layer for Identity {
    fn forward(&mut self, input: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        Ok(input.clone())
    }

    fn backward(&mut self, grad_output: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        Ok(grad_output.clone())
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_round_trip() {
        let mut flat = Flatten::new();
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let y = flat.forward(&x, ExecCtx::train()).unwrap();
        assert_eq!(y.shape(), &[2, 12]);
        let gx = flat.backward(&y, ExecCtx::default()).unwrap();
        assert_eq!(gx.shape(), x.shape());
        assert_eq!(gx.data(), x.data());
    }

    #[test]
    fn flatten_backward_requires_forward() {
        let mut flat = Flatten::new();
        assert!(flat.backward(&Tensor::ones(&[1, 4]), ExecCtx::default()).is_err());
    }

    #[test]
    fn identity_passthrough() {
        let mut id = Identity::new();
        let x = Tensor::from_vec(vec![3], vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(id.forward(&x, ExecCtx::eval()).unwrap(), x);
        assert_eq!(id.backward(&x, ExecCtx::default()).unwrap(), x);
        assert!(id.params().is_empty());
    }
}
