use crate::{ExecCtx, Layer, NnError, Param, Result};
use rt_tensor::{Tensor, TensorError};

/// Rectified linear unit: `y = max(x, 0)`.
///
/// The backward pass routes gradients only through positions that were
/// strictly positive in the forward pass (the subgradient at 0 is taken
/// as 0, matching PyTorch).
#[derive(Debug, Default)]
pub struct Relu {
    positive: Option<Vec<bool>>,
    shape: Vec<usize>,
}

impl Relu {
    /// Creates a ReLU activation.
    pub fn new() -> Self {
        Relu {
            positive: None,
            shape: Vec::new(),
        }
    }
}

impl Layer for Relu {
    fn is_relu(&self) -> bool {
        true
    }

    fn forward(&mut self, input: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        self.positive = Some(input.data().iter().map(|&x| x > 0.0).collect());
        self.shape = input.shape().to_vec();
        Ok(input.map(|x| x.max(0.0)))
    }

    fn prime_relu_cache(&mut self, output: &Tensor) {
        // `output` is max(x, 0): strictly positive exactly where the
        // pre-activation was, so this is the same mask `forward` caches.
        self.positive = Some(output.data().iter().map(|&y| y > 0.0).collect());
        self.shape = output.shape().to_vec();
    }

    fn backward(&mut self, grad_output: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        let positive = self
            .positive
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Relu" })?;
        if grad_output.shape() != self.shape.as_slice() {
            return Err(TensorError::ShapeMismatch {
                lhs: grad_output.shape().to_vec(),
                rhs: self.shape.clone(),
                op: "relu.backward",
            }
            .into());
        }
        let data: Vec<f32> = grad_output
            .data()
            .iter()
            .zip(positive)
            .map(|(&g, &p)| if p { g } else { 0.0 })
            .collect();
        Ok(Tensor::from_vec(self.shape.clone(), data)?)
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-2.0, 0.0, 1.0, 3.0]).unwrap();
        let y = relu.forward(&x, ExecCtx::train()).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 1.0, 3.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-2.0, 0.0, 1.0, 3.0]).unwrap();
        relu.forward(&x, ExecCtx::train()).unwrap();
        let g = Tensor::full(&[4], 5.0);
        let gx = relu.backward(&g, ExecCtx::default()).unwrap();
        assert_eq!(gx.data(), &[0.0, 0.0, 5.0, 5.0]);
    }

    #[test]
    fn backward_requires_forward_and_matching_shape() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::ones(&[2]), ExecCtx::default()).is_err());
        relu.forward(&Tensor::ones(&[2]), ExecCtx::train()).unwrap();
        assert!(relu.backward(&Tensor::ones(&[3]), ExecCtx::default()).is_err());
    }

    #[test]
    fn has_no_params() {
        let relu = Relu::new();
        assert!(relu.params().is_empty());
        assert_eq!(relu.param_count(), 0);
    }
}
