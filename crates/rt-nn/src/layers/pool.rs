use crate::{ExecCtx, Layer, NnError, Param, Result};
use rt_tensor::conv::{
    global_avg_pool, global_avg_pool_backward, max_pool2d, max_pool2d_backward, ConvGeometry,
};
use rt_tensor::Tensor;

/// 2-D max pooling.
#[derive(Debug)]
pub struct MaxPool2d {
    geo: ConvGeometry,
    cache: Option<(Vec<u32>, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer with the given window geometry.
    pub fn new(kernel: usize, stride: usize) -> Self {
        MaxPool2d {
            geo: ConvGeometry::new(kernel, stride, 0),
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, input: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        let out = max_pool2d(input, self.geo)?;
        self.cache = Some((out.argmax, input.shape().to_vec()));
        Ok(out.output)
    }

    fn backward(&mut self, grad_output: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        let (argmax, shape) = self
            .cache
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "MaxPool2d" })?;
        Ok(max_pool2d_backward(grad_output, argmax, shape)?)
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

/// Global average pooling: `[N, C, H, W] → [N, C]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { input_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, input: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        let out = global_avg_pool(input)?;
        self.input_shape = Some(input.shape().to_vec());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        let shape = self
            .input_shape
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward {
                layer: "GlobalAvgPool",
            })?;
        Ok(global_avg_pool_backward(grad_output, shape)?)
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_layer_round_trip() {
        let mut pool = MaxPool2d::new(2, 2);
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = pool.forward(&x, ExecCtx::train()).unwrap();
        assert_eq!(y.data(), &[4.0]);
        let gx = pool.backward(&Tensor::ones(&[1, 1, 1, 1]), ExecCtx::default()).unwrap();
        assert_eq!(gx.data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn gap_layer_round_trip() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let y = gap.forward(&x, ExecCtx::eval()).unwrap();
        assert_eq!(y.data(), &[2.0, 6.0]);
        let gx = gap.backward(&Tensor::ones(&[1, 2]), ExecCtx::default()).unwrap();
        assert_eq!(gx.data(), &[0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut pool = MaxPool2d::new(2, 2);
        assert!(pool.backward(&Tensor::ones(&[1, 1, 1, 1]), ExecCtx::default()).is_err());
        let mut gap = GlobalAvgPool::new();
        assert!(gap.backward(&Tensor::ones(&[1, 1]), ExecCtx::default()).is_err());
    }
}
