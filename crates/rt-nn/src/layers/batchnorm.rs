use crate::{ExecCtx, Layer, Mode, NnError, Param, ParamKind, Result};
use rt_tensor::{reduce, Tensor, TensorError};

/// Batch normalization over the channel axis of NCHW activations.
///
/// Train mode normalizes with batch statistics and updates exponential
/// running estimates; Eval mode normalizes with the running estimates.
/// The backward pass is exact in both modes — in Eval mode the statistics
/// are constants, which is the correct linearization for PGD attacks run
/// against a frozen network.
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Tensor,
    running_var: Tensor,
    momentum: f32,
    eps: f32,
    channels: usize,
    cache: Option<BnCache>,
}

struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    mode: Mode,
}

impl BatchNorm2d {
    /// Creates a BatchNorm layer with γ=1, β=0, running mean 0, running
    /// variance 1, momentum 0.1, and ε=1e-5.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new("bn.gamma", Tensor::ones(&[channels]), ParamKind::BnScale),
            beta: Param::new("bn.beta", Tensor::zeros(&[channels]), ParamKind::BnShift),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            eps: 1e-5,
            channels,
            cache: None,
        }
    }

    /// Channel count this layer normalizes.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Current running mean estimate.
    pub fn running_mean(&self) -> &Tensor {
        &self.running_mean
    }

    /// Current running variance estimate.
    pub fn running_var(&self) -> &Tensor {
        &self.running_var
    }

    /// Replaces the running statistics (used when loading checkpoints).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateDictMismatch`] if either tensor does not have
    /// shape `[channels]`.
    pub fn set_running_stats(&mut self, mean: Tensor, var: Tensor) -> Result<()> {
        if mean.shape() != [self.channels] || var.shape() != [self.channels] {
            return Err(NnError::StateDictMismatch {
                detail: format!(
                    "running stats must have shape [{}], got {:?} / {:?}",
                    self.channels,
                    mean.shape(),
                    var.shape()
                ),
            });
        }
        self.running_mean = mean;
        self.running_var = var;
        Ok(())
    }

    fn check_input(&self, input: &Tensor, op: &'static str) -> Result<[usize; 4]> {
        if input.ndim() != 4 || input.shape()[1] != self.channels {
            return Err(TensorError::ShapeMismatch {
                lhs: input.shape().to_vec(),
                rhs: vec![0, self.channels, 0, 0],
                op,
            }
            .into());
        }
        let s = input.shape();
        Ok([s[0], s[1], s[2], s[3]])
    }
}

impl std::fmt::Debug for BatchNorm2d {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchNorm2d")
            .field("channels", &self.channels)
            .field("momentum", &self.momentum)
            .field("eps", &self.eps)
            .finish()
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, input: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let [n, c, h, w] = self.check_input(input, "batchnorm.forward")?;
        let m = (n * h * w) as f32;
        let (mean, var): (Vec<f32>, Vec<f32>) = match ctx.mode {
            Mode::Train => {
                let sums = reduce::channel_sums(input)?;
                let sq = reduce::channel_sq_sums(input)?;
                let mean: Vec<f32> = sums.data().iter().map(|&s| s / m).collect();
                let var: Vec<f32> = sq
                    .data()
                    .iter()
                    .zip(&mean)
                    .map(|(&s, &mu)| (s / m - mu * mu).max(0.0))
                    .collect();
                // Exponential moving update of the running estimates.
                for ((rm, rv), (&bm, &bv)) in self
                    .running_mean
                    .data_mut()
                    .iter_mut()
                    .zip(self.running_var.data_mut())
                    .zip(mean.iter().zip(&var))
                {
                    *rm = (1.0 - self.momentum) * *rm + self.momentum * bm;
                    *rv = (1.0 - self.momentum) * *rv + self.momentum * bv;
                }
                (mean, var)
            }
            Mode::Eval => (
                self.running_mean.data().to_vec(),
                self.running_var.data().to_vec(),
            ),
        };
        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();

        let plane = h * w;
        let mut x_hat = Tensor::zeros(input.shape());
        let mut out = Tensor::zeros(input.shape());
        {
            let xd = input.data();
            let xh = x_hat.data_mut();
            let od = out.data_mut();
            let gd = self.gamma.data.data();
            let bd = self.beta.data.data();
            for b in 0..n {
                for ch in 0..c {
                    let start = (b * c + ch) * plane;
                    let (mu, is, g, be) = (mean[ch], inv_std[ch], gd[ch], bd[ch]);
                    for i in start..start + plane {
                        let xn = (xd[i] - mu) * is;
                        xh[i] = xn;
                        od[i] = g * xn + be;
                    }
                }
            }
        }
        self.cache = Some(BnCache {
            x_hat,
            inv_std,
            mode: ctx.mode,
        });
        Ok(out)
    }

    #[allow(clippy::needless_range_loop)] // channel index addresses several arrays
    fn backward(&mut self, grad_output: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or(NnError::BackwardBeforeForward {
            layer: "BatchNorm2d",
        })?;
        let [n, c, h, w] = self.check_input(grad_output, "batchnorm.backward")?;
        if grad_output.shape() != cache.x_hat.shape() {
            return Err(TensorError::ShapeMismatch {
                lhs: grad_output.shape().to_vec(),
                rhs: cache.x_hat.shape().to_vec(),
                op: "batchnorm.backward",
            }
            .into());
        }
        let m = (n * h * w) as f32;
        let plane = h * w;

        // Parameter gradients are identical in both modes.
        let dgamma = reduce::channel_dot(grad_output, &cache.x_hat)?;
        let dbeta = reduce::channel_sums(grad_output)?;
        self.gamma.grad.add_assign(&dgamma)?;
        self.beta.grad.add_assign(&dbeta)?;

        let mut grad_input = Tensor::zeros(grad_output.shape());
        let god = grad_output.data();
        let xh = cache.x_hat.data();
        let gd = self.gamma.data.data();
        let gid = grad_input.data_mut();
        match cache.mode {
            Mode::Train => {
                // dx = γ·inv_std/m · (m·dy − Σdy − x̂·Σ(dy·x̂)) per channel.
                let sum_dy = dbeta.data();
                let sum_dy_xhat = dgamma.data();
                for b in 0..n {
                    for ch in 0..c {
                        let start = (b * c + ch) * plane;
                        let coeff = gd[ch] * cache.inv_std[ch] / m;
                        let (s1, s2) = (sum_dy[ch], sum_dy_xhat[ch]);
                        for i in start..start + plane {
                            gid[i] = coeff * (m * god[i] - s1 - xh[i] * s2);
                        }
                    }
                }
            }
            Mode::Eval => {
                // Statistics are constants: dx = dy · γ · inv_std.
                for b in 0..n {
                    for ch in 0..c {
                        let start = (b * c + ch) * plane;
                        let coeff = gd[ch] * cache.inv_std[ch];
                        for i in start..start + plane {
                            gid[i] = god[i] * coeff;
                        }
                    }
                }
            }
        }
        Ok(grad_input)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn buffers(&self) -> Vec<&Tensor> {
        vec![&self.running_mean, &self.running_var]
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.running_mean, &mut self.running_var]
    }

    /// Train-mode BatchNorm couples every sample to the batch statistics
    /// and advances its running estimates — never cacheable per sample.
    fn forward_is_pure(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_tensor::init;
    use rt_tensor::rng::rng_from_seed;

    #[test]
    fn train_mode_normalizes_batch() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = rng_from_seed(0);
        let x = init::normal(&[4, 2, 3, 3], 5.0, 2.0, &mut rng);
        let y = bn.forward(&x, ExecCtx::train()).unwrap();
        // Per-channel output mean ≈ 0, variance ≈ 1.
        let sums = reduce::channel_sums(&y).unwrap();
        let sq = reduce::channel_sq_sums(&y).unwrap();
        let m = (4 * 3 * 3) as f32;
        for ch in 0..2 {
            let mean = sums.data()[ch] / m;
            let var = sq.data()[ch] / m - mean * mean;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn running_stats_track_batch_stats() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::full(&[2, 1, 2, 2], 10.0);
        for _ in 0..200 {
            bn.forward(&x, ExecCtx::train()).unwrap();
        }
        // Constant input: batch mean 10, var 0; running stats converge there.
        assert!((bn.running_mean().data()[0] - 10.0).abs() < 1e-3);
        assert!(bn.running_var().data()[0] < 1e-3);
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.set_running_stats(
            Tensor::from_vec(vec![1], vec![2.0]).unwrap(),
            Tensor::from_vec(vec![1], vec![4.0]).unwrap(),
        )
        .unwrap();
        let x = Tensor::full(&[1, 1, 1, 2], 4.0);
        let y = bn.forward(&x, ExecCtx::eval()).unwrap();
        // (4 - 2) / sqrt(4 + eps) ≈ 1.0
        assert!((y.data()[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn gamma_beta_affine_applied() {
        let mut bn = BatchNorm2d::new(1);
        bn.gamma.data.fill(3.0);
        bn.beta.data.fill(-1.0);
        let x = Tensor::from_vec(vec![1, 1, 1, 2], vec![-1.0, 1.0]).unwrap();
        let y = bn.forward(&x, ExecCtx::train()).unwrap();
        // x_hat = [-1, 1] (mean 0, var 1), y = 3*x_hat - 1.
        assert!((y.data()[0] + 4.0).abs() < 1e-2);
        assert!((y.data()[1] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn train_backward_gradient_sums_to_zero() {
        // In train mode, the per-channel input gradient sums to zero because
        // shifting all inputs equally does not change the normalized output.
        let mut bn = BatchNorm2d::new(2);
        let mut rng = rng_from_seed(1);
        let x = init::normal(&[3, 2, 2, 2], 0.0, 1.0, &mut rng);
        bn.forward(&x, ExecCtx::train()).unwrap();
        let g = init::normal(&[3, 2, 2, 2], 0.0, 1.0, &mut rng);
        let gx = bn.backward(&g, ExecCtx::default()).unwrap();
        let per_channel = reduce::channel_sums(&gx).unwrap();
        for &s in per_channel.data() {
            assert!(s.abs() < 1e-3, "channel grad sum {s}");
        }
    }

    #[test]
    fn eval_backward_is_diagonal_scaling() {
        let mut bn = BatchNorm2d::new(1);
        bn.set_running_stats(
            Tensor::zeros(&[1]),
            Tensor::from_vec(vec![1], vec![0.25]).unwrap(),
        )
        .unwrap();
        bn.gamma.data.fill(2.0);
        let x = Tensor::ones(&[1, 1, 1, 2]);
        bn.forward(&x, ExecCtx::eval()).unwrap();
        let g = Tensor::from_vec(vec![1, 1, 1, 2], vec![1.0, -1.0]).unwrap();
        let gx = bn.backward(&g, ExecCtx::default()).unwrap();
        // coeff = gamma / sqrt(var + eps) = 2 / 0.5 = 4.
        assert!((gx.data()[0] - 4.0).abs() < 1e-3);
        assert!((gx.data()[1] + 4.0).abs() < 1e-3);
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn
            .forward(&Tensor::ones(&[1, 2, 2, 2]), ExecCtx::train())
            .is_err());
        assert!(bn
            .set_running_stats(Tensor::zeros(&[2]), Tensor::ones(&[3]))
            .is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut bn = BatchNorm2d::new(1);
        assert!(matches!(
            bn.backward(&Tensor::ones(&[1, 1, 1, 1]), ExecCtx::default()),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }
}
