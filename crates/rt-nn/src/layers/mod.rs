//! Concrete layers.
//!
//! Every layer implements [`crate::Layer`]: it caches the minimum state
//! needed for its own backward pass during `forward` and produces exact
//! input gradients during `backward`.

mod activation;
mod batchnorm;
mod conv;
mod dropout;
mod flatten;
mod linear;
mod pool;

pub use activation::Relu;
pub use batchnorm::BatchNorm2d;
pub use conv::{Conv2d, Conv2dConfig};
pub use dropout::Dropout;
pub use flatten::{Flatten, Identity};
pub use linear::Linear;
pub use pool::{GlobalAvgPool, MaxPool2d};
