//! Concrete layers.
//!
//! Every layer implements [`crate::Layer`]: it caches the minimum state
//! needed for its own backward pass during `forward` and produces exact
//! input gradients during `backward`.

mod activation;
mod batchnorm;
mod conv;
mod dropout;
mod flatten;
mod linear;
mod pool;

/// Records one layer execution into the cost registry (and, for planned
/// sparse kernels, the sparse timing metrics). No-op below telemetry
/// level `all` — disabled sites pay one relaxed atomic load.
///
/// The cost model is integer-exact so reports cross-check against
/// `rt-prune::stats::sparse_exec_report` with `==`:
///
/// * `flops = passes · plan_flops(units)` when a compiled plan executed,
///   else `passes · 2 · weight_len · units` (the dense GEMM count);
/// * `dense_flops` is always the dense count — the sparse saving is the
///   gap between the two;
/// * `bytes = 4 · passes · (io_elems + live_weights)`: every f32 moved is
///   4 bytes, activations (`io_elems`) plus the weights the executed
///   kernel actually reads (`plan.live_weights()`, or the whole matrix
///   when running dense).
///
/// `units` is the GEMM batch dimension (rows for linear, output pixels
/// for conv); `passes` is 1 for forward and 2 for backward (dW and dX
/// products). `timer` is the gated stopwatch started before a *planned*
/// kernel ran (`None` on dense paths or when metrics are off).
pub(crate) fn observe_exec(
    name: &str,
    plan: Option<&rt_sparse::SparsePlan>,
    units: usize,
    passes: u64,
    weight_len: usize,
    io_elems: usize,
    timer: Option<rt_obs::Stopwatch>,
) {
    if !rt_obs::metrics_enabled() {
        return;
    }
    let (flops, dense_flops, live) = match plan {
        Some(p) => (
            passes * p.plan_flops(units),
            passes * p.dense_flops(units),
            p.live_weights(),
        ),
        None => {
            let dense = passes * 2 * (weight_len as u64) * (units as u64);
            (dense, dense, weight_len as u64)
        }
    };
    rt_obs::cost::record_cost(
        name,
        rt_obs::cost::CostDelta {
            flops,
            dense_flops,
            bytes: 4 * passes * (io_elems as u64 + live),
            params_total: weight_len as u64,
            params_live: live,
        },
    );
    if let (Some(p), Some(t)) = (plan, timer) {
        rt_obs::histogram("sparse.gemm_ms").observe(t.elapsed_ms());
        rt_obs::counter("sparse.flops_saved").add(passes * p.flops_saved(units));
    }
}

/// Starts the per-kernel stopwatch iff metrics are recording — the gated
/// timing idiom shared by the sparse execution paths.
pub(crate) fn exec_timer() -> Option<rt_obs::Stopwatch> {
    rt_obs::Stopwatch::start_if(rt_obs::metrics_enabled())
}

pub use activation::Relu;
pub use batchnorm::BatchNorm2d;
pub use conv::{Conv2d, Conv2dConfig};
pub use dropout::Dropout;
pub use flatten::{Flatten, Identity};
pub use linear::Linear;
pub use pool::{GlobalAvgPool, MaxPool2d};
