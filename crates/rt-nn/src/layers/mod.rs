//! Concrete layers.
//!
//! Every layer implements [`crate::Layer`]: it caches the minimum state
//! needed for its own backward pass during `forward` and produces exact
//! input gradients during `backward`.

mod activation;
mod batchnorm;
mod conv;
mod dropout;
mod flatten;
mod linear;
mod pool;

/// Records per-call sparse-execution telemetry (no-ops when metrics are
/// disabled): how long the planned kernel took and how many multiply-adds
/// the plan skipped relative to a dense pass over the same shapes.
pub(crate) fn observe_sparse_call(plan: &rt_sparse::SparsePlan, batch: usize, elapsed_ms: f64) {
    if rt_obs::metrics_enabled() {
        rt_obs::histogram("sparse.gemm_ms").observe(elapsed_ms);
        rt_obs::counter("sparse.flops_saved").add(plan.flops_saved(batch));
    }
}

pub use activation::Relu;
pub use batchnorm::BatchNorm2d;
pub use conv::{Conv2d, Conv2dConfig};
pub use dropout::Dropout;
pub use flatten::{Flatten, Identity};
pub use linear::Linear;
pub use pool::{GlobalAvgPool, MaxPool2d};
