use crate::{ExecCtx, Layer, NnError, Param, ParamKind, Result};
use rand::Rng;
use rt_sparse::{kernels as sparse_kernels, PlanKind, SparsePlan};
use rt_tensor::linalg::Gemm;
use rt_tensor::{init, kern, linalg, pool, reduce, Tensor, TensorError};
use std::sync::Arc;

/// Fully connected layer: `y = x Wᵀ + b` over `[N, in_features]` inputs.
///
/// Weight layout is `[out_features, in_features]` (PyTorch convention), so
/// row `o` of the weight is the receptive field of output feature `o` —
/// which is also the "row" granularity unit for structured pruning.
///
/// # Sparsity-aware execution
///
/// When the weight carries a compiled [`SparsePlan`] (installed by
/// [`Param::set_mask`]) and `ctx.sparse` is on, forward and backward
/// dispatch through compact or CSR kernels instead of the dense masked
/// GEMM. Both paths are bit-identical to masked-dense execution: the
/// sparse kernels accumulate exactly the nonzero-product terms in the
/// same order as the zero-skipping dense kernels, and pruned positions of
/// outputs/gradients are exact `+0.0` either way. Gradients at pruned
/// *weight* positions are only defined post-[`Param::mask_grad`] (the
/// dense path deposits transient values there that the optimizer clears).
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Xavier-uniform weights and zero bias.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero feature counts.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::InvalidConfig {
                detail: format!(
                    "linear needs non-zero features, got in={in_features} out={out_features}"
                ),
            });
        }
        Ok(Linear {
            weight: Param::new(
                "linear.weight",
                init::xavier_uniform(&[out_features, in_features], in_features, out_features, rng),
                ParamKind::Weight,
            ),
            bias: Param::new(
                "linear.bias",
                Tensor::zeros(&[out_features]),
                ParamKind::Bias,
            ),
            in_features,
            out_features,
            cached_input: None,
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight's compiled sparse plan, if sparse execution applies:
    /// `ctx.sparse` is on, the plan is non-dense, and its dims describe
    /// exactly this layer's `[out, in]` matrix (anything else falls back
    /// to dense — which can cost speed but never correctness).
    fn active_plan(&self, ctx: ExecCtx) -> Option<Arc<SparsePlan>> {
        if !ctx.sparse {
            return None;
        }
        self.weight.plan.clone().filter(|p| {
            !p.is_dense()
                && p.dims.rows == self.out_features
                && p.dims.cols == self.in_features
                && p.dims.col_group == 1
        })
    }
}

impl std::fmt::Debug for Linear {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Linear")
            .field("in_features", &self.in_features)
            .field("out_features", &self.out_features)
            .finish()
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        if input.ndim() != 2 || input.shape()[1] != self.in_features {
            return Err(TensorError::ShapeMismatch {
                lhs: input.shape().to_vec(),
                rhs: vec![
                    input.shape().first().copied().unwrap_or(0),
                    self.in_features,
                ],
                op: "linear.forward",
            }
            .into());
        }
        let n = input.shape()[0];
        let mut out = Tensor::zeros(&[n, self.out_features]);
        let mut bias_fused = false;
        match self.active_plan(ctx) {
            Some(plan) if plan.kind == PlanKind::Csr => {
                // y = x Wᵀ over the live entries only. Dead output
                // features stay exactly +0.0, matching the zero-skipping
                // dense kernel's accumulator.
                let t0 = super::exec_timer();
                sparse_kernels::csr_dot_xt(
                    input.data(),
                    n,
                    self.weight.data.data(),
                    &plan,
                    out.data_mut(),
                );
                super::observe_exec(
                    &self.weight.name,
                    Some(&plan),
                    n,
                    1,
                    self.out_features * self.in_features,
                    n * (self.in_features + self.out_features),
                    t0,
                );
            }
            Some(plan) => {
                // Compact: pack live rows × live columns of W into a small
                // dense matrix, gather the matching input columns, run a
                // plain GEMM, and scatter outputs back (dead features
                // zero-filled).
                let t0 = super::exec_timer();
                let (lr, lg) = (&plan.live_rows, &plan.live_col_groups);
                let mut pw = pool::take(lr.len() * lg.len());
                sparse_kernels::pack_matrix_groups(self.weight.data.data(), &plan, &mut pw);
                let mut xp = pool::take(n * lg.len());
                sparse_kernels::gather_cols(input.data(), n, self.in_features, lg, &mut xp);
                let pw_t = Tensor::from_vec(vec![lr.len(), lg.len()], pw)?;
                let xp_t = Tensor::from_vec(vec![n, lg.len()], xp)?;
                let mut yp_t = Tensor::from_vec(vec![n, lr.len()], pool::take(n * lr.len()))?;
                linalg::gemm(&xp_t, &pw_t, Gemm::new().trans_b(), &mut yp_t)?;
                sparse_kernels::scatter_cols_clear(
                    yp_t.data(),
                    n,
                    lr,
                    self.out_features,
                    out.data_mut(),
                );
                pool::put(pw_t.into_vec());
                pool::put(xp_t.into_vec());
                pool::put(yp_t.into_vec());
                super::observe_exec(
                    &self.weight.name,
                    Some(&plan),
                    n,
                    1,
                    self.out_features * self.in_features,
                    n * (self.in_features + self.out_features),
                    t0,
                );
            }
            None => {
                // y = x Wᵀ + b. When the packed kernel applies, the bias
                // add is fused into the GEMM store epilogue (`v + b[col]`
                // is the same float op as `add_row_inplace`'s `*v += bv`,
                // so the result is bit-identical to gemm-then-add).
                if kern::enabled() && kern::worth_packing(n, self.in_features, self.out_features) {
                    kern::gemm(
                        input.data(),
                        self.weight.data.data(),
                        n,
                        self.in_features,
                        self.out_features,
                        kern::KernCfg {
                            trans_a: false,
                            trans_b: true,
                            acc: false,
                            parallel: true,
                        },
                        kern::Epilogue::BiasCol(self.bias.data.data()),
                        out.data_mut(),
                    );
                    bias_fused = true;
                } else {
                    linalg::gemm(input, &self.weight.data, Gemm::new().trans_b(), &mut out)?;
                }
                super::observe_exec(
                    &self.weight.name,
                    None,
                    n,
                    1,
                    self.out_features * self.in_features,
                    n * (self.in_features + self.out_features),
                    None,
                );
            }
        }
        if !bias_fused {
            out.add_row_inplace(&self.bias.data)?;
        }
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn forward_relu_fused(&mut self, input: &Tensor, ctx: ExecCtx) -> Option<Result<Tensor>> {
        // Eval-only dense fast path: fold `max(v + b, 0)` into the packed
        // GEMM store. Anything the fused path cannot handle (train mode,
        // sparse plans, odd shapes, kernel disabled) returns `None` so the
        // caller runs the plain forward + activation pair, which also
        // keeps error reporting on the ordinary path.
        if ctx.is_train() || !kern::enabled() {
            return None;
        }
        if input.ndim() != 2 || input.shape()[1] != self.in_features {
            return None;
        }
        let n = input.shape()[0];
        if !kern::worth_packing(n, self.in_features, self.out_features)
            || self.active_plan(ctx).is_some()
        {
            return None;
        }
        let mut out = Tensor::zeros(&[n, self.out_features]);
        kern::gemm(
            input.data(),
            self.weight.data.data(),
            n,
            self.in_features,
            self.out_features,
            kern::KernCfg {
                trans_a: false,
                trans_b: true,
                acc: false,
                parallel: true,
            },
            kern::Epilogue::BiasColRelu(self.bias.data.data()),
            out.data_mut(),
        );
        super::observe_exec(
            &self.weight.name,
            None,
            n,
            1,
            self.out_features * self.in_features,
            n * (self.in_features + self.out_features),
            None,
        );
        self.cached_input = Some(input.clone());
        Some(Ok(out))
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Linear" })?;
        let n = input.shape()[0];
        if grad_output.shape() != [n, self.out_features] {
            return Err(TensorError::ShapeMismatch {
                lhs: grad_output.shape().to_vec(),
                rhs: vec![n, self.out_features],
                op: "linear.backward",
            }
            .into());
        }
        // db += column sums of dY (the bias is never pruned, so this is
        // identical on every execution path).
        let gb = reduce::col_sums(grad_output)?;
        self.bias.grad.add_assign(&gb)?;
        let mut gx = Tensor::zeros(&[n, self.in_features]);
        match self.active_plan(ctx) {
            Some(plan) if plan.kind == PlanKind::Csr => {
                let t0 = super::exec_timer();
                // dW += dYᵀ X at live entries only (dead entries are left
                // untouched; Param::mask_grad defines them as zero).
                sparse_kernels::csr_grad_atb(
                    grad_output.data(),
                    input.data(),
                    n,
                    &plan,
                    self.weight.grad.data_mut(),
                );
                // dX = dY W over live entries.
                sparse_kernels::csr_dyw(
                    grad_output.data(),
                    n,
                    self.weight.data.data(),
                    &plan,
                    gx.data_mut(),
                );
                super::observe_exec(
                    &self.weight.name,
                    Some(&plan),
                    n,
                    2,
                    self.out_features * self.in_features,
                    n * (self.in_features + self.out_features),
                    t0,
                );
            }
            Some(plan) => {
                let t0 = super::exec_timer();
                let (lr, lg) = (&plan.live_rows, &plan.live_col_groups);
                let mut pw = pool::take(lr.len() * lg.len());
                sparse_kernels::pack_matrix_groups(self.weight.data.data(), &plan, &mut pw);
                let mut dyp = pool::take(n * lr.len());
                sparse_kernels::gather_cols(
                    grad_output.data(),
                    n,
                    self.out_features,
                    lr,
                    &mut dyp,
                );
                let mut xp = pool::take(n * lg.len());
                sparse_kernels::gather_cols(input.data(), n, self.in_features, lg, &mut xp);
                let pw_t = Tensor::from_vec(vec![lr.len(), lg.len()], pw)?;
                let dyp_t = Tensor::from_vec(vec![n, lr.len()], dyp)?;
                let xp_t = Tensor::from_vec(vec![n, lg.len()], xp)?;
                // dW += dYᵀ X on the packed rectangle: pack the current
                // grad, accumulate into it, scatter back (entries outside
                // the rectangle are untouched).
                let mut gwp_t = Tensor::from_vec(
                    vec![lr.len(), lg.len()],
                    pool::take(lr.len() * lg.len()),
                )?;
                sparse_kernels::pack_matrix_groups(
                    self.weight.grad.data(),
                    &plan,
                    gwp_t.data_mut(),
                );
                linalg::gemm(&dyp_t, &xp_t, Gemm::new().trans_a().acc(), &mut gwp_t)?;
                sparse_kernels::scatter_matrix_groups(
                    gwp_t.data(),
                    &plan,
                    self.weight.grad.data_mut(),
                );
                // dX = dY W on the packed rectangle, scattered to the full
                // width (dead input features get exact +0.0, same as the
                // dense kernel produces).
                let mut gxp_t =
                    Tensor::from_vec(vec![n, lg.len()], pool::take(n * lg.len()))?;
                linalg::gemm(&dyp_t, &pw_t, Gemm::new(), &mut gxp_t)?;
                sparse_kernels::scatter_cols_clear(
                    gxp_t.data(),
                    n,
                    lg,
                    self.in_features,
                    gx.data_mut(),
                );
                pool::put(pw_t.into_vec());
                pool::put(dyp_t.into_vec());
                pool::put(xp_t.into_vec());
                pool::put(gwp_t.into_vec());
                pool::put(gxp_t.into_vec());
                super::observe_exec(
                    &self.weight.name,
                    Some(&plan),
                    n,
                    2,
                    self.out_features * self.in_features,
                    n * (self.in_features + self.out_features),
                    t0,
                );
            }
            None => {
                // dW += dYᵀ X ; dX = dY W.
                linalg::gemm(
                    grad_output,
                    input,
                    Gemm::new().trans_a().acc(),
                    &mut self.weight.grad,
                )?;
                linalg::gemm(grad_output, &self.weight.data, Gemm::new(), &mut gx)?;
                super::observe_exec(
                    &self.weight.name,
                    None,
                    n,
                    2,
                    self.out_features * self.in_features,
                    n * (self.in_features + self.out_features),
                    None,
                );
            }
        }
        Ok(gx)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_tensor::rng::rng_from_seed;

    #[test]
    fn forward_matches_manual_computation() {
        let mut rng = rng_from_seed(0);
        let mut lin = Linear::new(2, 2, &mut rng).unwrap();
        lin.weight.data = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        lin.bias.data = Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let y = lin.forward(&x, ExecCtx::eval()).unwrap();
        // y0 = 1*1 + 2*1 + 0.5 ; y1 = 3 + 4 - 0.5
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_gradients_match_manual() {
        let mut rng = rng_from_seed(1);
        let mut lin = Linear::new(2, 1, &mut rng).unwrap();
        lin.weight.data = Tensor::from_vec(vec![1, 2], vec![2.0, -1.0]).unwrap();
        let x = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        lin.forward(&x, ExecCtx::train()).unwrap();
        let g = Tensor::from_vec(vec![2, 1], vec![1.0, 1.0]).unwrap();
        let gx = lin.backward(&g, ExecCtx::default()).unwrap();
        // dW = sum over batch of g_i * x_i = [1+3, 2+4]
        assert_eq!(lin.weight.grad.data(), &[4.0, 6.0]);
        assert_eq!(lin.bias.grad.data(), &[2.0]);
        // dX = g * W
        assert_eq!(gx.data(), &[2.0, -1.0, 2.0, -1.0]);
    }

    #[test]
    fn shape_validation() {
        let mut rng = rng_from_seed(2);
        let mut lin = Linear::new(3, 2, &mut rng).unwrap();
        assert!(lin.forward(&Tensor::ones(&[1, 4]), ExecCtx::eval()).is_err());
        assert!(lin.forward(&Tensor::ones(&[3]), ExecCtx::eval()).is_err());
        assert!(Linear::new(0, 2, &mut rng).is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = rng_from_seed(3);
        let mut lin = Linear::new(2, 2, &mut rng).unwrap();
        assert!(matches!(
            lin.backward(&Tensor::ones(&[1, 2]), ExecCtx::default()),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    /// Forward, input gradient, bias gradient, and (post-`mask_grad`)
    /// weight gradient must match masked-dense execution bit-for-bit.
    fn assert_sparse_matches_dense(mask: Vec<f32>) {
        let (o, i, n) = (4usize, 6usize, 3usize);
        let mk_layer = || {
            let mut rng = rng_from_seed(42);
            let mut lin = Linear::new(i, o, &mut rng).unwrap();
            lin.weight
                .set_mask(Tensor::from_vec(vec![o, i], mask.clone()).unwrap())
                .unwrap();
            lin
        };
        let x = Tensor::from_fn(&[n, i], |idx| ((idx % 7) as f32 - 3.0) * 0.25);
        let dy = Tensor::from_fn(&[n, o], |idx| ((idx % 5) as f32 - 2.0) * 0.5);
        let mut sparse = mk_layer();
        let mut dense = mk_layer();
        let ctx_s = ExecCtx::train().with_sparse(true);
        let ctx_d = ExecCtx::train().with_sparse(false);
        let ys = sparse.forward(&x, ctx_s).unwrap();
        let yd = dense.forward(&x, ctx_d).unwrap();
        for (a, b) in ys.data().iter().zip(yd.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "forward diverged");
        }
        let gxs = sparse.backward(&dy, ctx_s).unwrap();
        let gxd = dense.backward(&dy, ctx_d).unwrap();
        for (a, b) in gxs.data().iter().zip(gxd.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "input grad diverged");
        }
        sparse.weight.mask_grad();
        dense.weight.mask_grad();
        for (a, b) in sparse
            .weight
            .grad
            .data()
            .iter()
            .zip(dense.weight.grad.data())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "weight grad diverged");
        }
        for (a, b) in sparse.bias.grad.data().iter().zip(dense.bias.grad.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "bias grad diverged");
        }
    }

    #[test]
    fn row_structured_sparse_execution_is_bit_identical() {
        // Rows 1 and 3 fully pruned, row 0/2 live, plus a dead column →
        // Compact plan.
        let mut mask = vec![0.0f32; 4 * 6];
        for r in [0usize, 2] {
            for c in 0..6 {
                if c != 5 {
                    mask[r * 6 + c] = 1.0;
                }
            }
        }
        assert_sparse_matches_dense(mask);
    }

    #[test]
    fn unstructured_sparse_execution_is_bit_identical() {
        // ~23% density scattered mask → CSR plan.
        let mask: Vec<f32> = (0..4 * 6)
            .map(|j| if (j * 7) % 13 < 3 { 1.0 } else { 0.0 })
            .collect();
        assert_sparse_matches_dense(mask);
    }

    /// The eval-mode fused `GEMM + bias + ReLU` epilogue must match
    /// running the plain forward and then a ReLU, bit-for-bit.
    #[test]
    fn fused_bias_relu_matches_plain_forward() {
        let (i, o, n) = (24usize, 20usize, 32usize); // n*i*o ≥ 8192 → packable
        let mut rng = rng_from_seed(9);
        let mut lin = Linear::new(i, o, &mut rng).unwrap();
        let x = Tensor::from_fn(&[n, i], |idx| ((idx % 11) as f32 - 5.0) * 0.3);
        let want = lin.forward(&x, ExecCtx::eval()).unwrap().map(|v| v.max(0.0));
        match lin.forward_relu_fused(&x, ExecCtx::eval()) {
            Some(got) => {
                let got = got.unwrap();
                assert_eq!(got.shape(), want.shape());
                for (a, b) in got.data().iter().zip(want.data()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "fused relu diverged");
                }
            }
            // RT_KERN=0 in the environment: nothing to fuse, and that is
            // exactly the contract — the caller falls back.
            None => assert!(!rt_tensor::kern::enabled()),
        }
        // Train mode must always refuse so the activation cache exists.
        assert!(lin.forward_relu_fused(&x, ExecCtx::train()).is_none());
    }

    #[test]
    fn params_order_is_weight_then_bias() {
        let mut rng = rng_from_seed(4);
        let lin = Linear::new(2, 3, &mut rng).unwrap();
        let params = lin.params();
        assert_eq!(params[0].kind, ParamKind::Weight);
        assert_eq!(params[1].kind, ParamKind::Bias);
        assert_eq!(lin.param_count(), 6 + 3);
    }
}
