use crate::{ExecCtx, Layer, NnError, Param, ParamKind, Result};
use rand::Rng;
use rt_tensor::linalg::Gemm;
use rt_tensor::{init, linalg, reduce, Tensor, TensorError};

/// Fully connected layer: `y = x Wᵀ + b` over `[N, in_features]` inputs.
///
/// Weight layout is `[out_features, in_features]` (PyTorch convention), so
/// row `o` of the weight is the receptive field of output feature `o` —
/// which is also the "row" granularity unit for structured pruning.
pub struct Linear {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a linear layer with Xavier-uniform weights and zero bias.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero feature counts.
    pub fn new<R: Rng>(in_features: usize, out_features: usize, rng: &mut R) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::InvalidConfig {
                detail: format!(
                    "linear needs non-zero features, got in={in_features} out={out_features}"
                ),
            });
        }
        Ok(Linear {
            weight: Param::new(
                "linear.weight",
                init::xavier_uniform(&[out_features, in_features], in_features, out_features, rng),
                ParamKind::Weight,
            ),
            bias: Param::new(
                "linear.bias",
                Tensor::zeros(&[out_features]),
                ParamKind::Bias,
            ),
            in_features,
            out_features,
            cached_input: None,
        })
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl std::fmt::Debug for Linear {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Linear")
            .field("in_features", &self.in_features)
            .field("out_features", &self.out_features)
            .finish()
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        if input.ndim() != 2 || input.shape()[1] != self.in_features {
            return Err(TensorError::ShapeMismatch {
                lhs: input.shape().to_vec(),
                rhs: vec![
                    input.shape().first().copied().unwrap_or(0),
                    self.in_features,
                ],
                op: "linear.forward",
            }
            .into());
        }
        // y = x Wᵀ + b through the unified gemm entry point.
        let mut out = Tensor::zeros(&[input.shape()[0], self.out_features]);
        linalg::gemm(input, &self.weight.data, Gemm::new().trans_b(), &mut out)?;
        out.add_row_inplace(&self.bias.data)?;
        self.cached_input = Some(input.clone());
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor, _ctx: ExecCtx) -> Result<Tensor> {
        let input = self
            .cached_input
            .as_ref()
            .ok_or(NnError::BackwardBeforeForward { layer: "Linear" })?;
        let n = input.shape()[0];
        if grad_output.shape() != [n, self.out_features] {
            return Err(TensorError::ShapeMismatch {
                lhs: grad_output.shape().to_vec(),
                rhs: vec![n, self.out_features],
                op: "linear.backward",
            }
            .into());
        }
        // dW += dYᵀ X ; db += column sums of dY ; dX = dY W.
        linalg::gemm(
            grad_output,
            input,
            Gemm::new().trans_a().acc(),
            &mut self.weight.grad,
        )?;
        let gb = reduce::col_sums(grad_output)?;
        self.bias.grad.add_assign(&gb)?;
        let mut gx = Tensor::zeros(&[n, self.in_features]);
        linalg::gemm(grad_output, &self.weight.data, Gemm::new(), &mut gx)?;
        Ok(gx)
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_tensor::rng::rng_from_seed;

    #[test]
    fn forward_matches_manual_computation() {
        let mut rng = rng_from_seed(0);
        let mut lin = Linear::new(2, 2, &mut rng).unwrap();
        lin.weight.data = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        lin.bias.data = Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let y = lin.forward(&x, ExecCtx::eval()).unwrap();
        // y0 = 1*1 + 2*1 + 0.5 ; y1 = 3 + 4 - 0.5
        assert_eq!(y.data(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_gradients_match_manual() {
        let mut rng = rng_from_seed(1);
        let mut lin = Linear::new(2, 1, &mut rng).unwrap();
        lin.weight.data = Tensor::from_vec(vec![1, 2], vec![2.0, -1.0]).unwrap();
        let x = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        lin.forward(&x, ExecCtx::train()).unwrap();
        let g = Tensor::from_vec(vec![2, 1], vec![1.0, 1.0]).unwrap();
        let gx = lin.backward(&g, ExecCtx::default()).unwrap();
        // dW = sum over batch of g_i * x_i = [1+3, 2+4]
        assert_eq!(lin.weight.grad.data(), &[4.0, 6.0]);
        assert_eq!(lin.bias.grad.data(), &[2.0]);
        // dX = g * W
        assert_eq!(gx.data(), &[2.0, -1.0, 2.0, -1.0]);
    }

    #[test]
    fn shape_validation() {
        let mut rng = rng_from_seed(2);
        let mut lin = Linear::new(3, 2, &mut rng).unwrap();
        assert!(lin.forward(&Tensor::ones(&[1, 4]), ExecCtx::eval()).is_err());
        assert!(lin.forward(&Tensor::ones(&[3]), ExecCtx::eval()).is_err());
        assert!(Linear::new(0, 2, &mut rng).is_err());
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = rng_from_seed(3);
        let mut lin = Linear::new(2, 2, &mut rng).unwrap();
        assert!(matches!(
            lin.backward(&Tensor::ones(&[1, 2]), ExecCtx::default()),
            Err(NnError::BackwardBeforeForward { .. })
        ));
    }

    #[test]
    fn params_order_is_weight_then_bias() {
        let mut rng = rng_from_seed(4);
        let lin = Linear::new(2, 3, &mut rng).unwrap();
        let params = lin.params();
        assert_eq!(params[0].kind, ParamKind::Weight);
        assert_eq!(params[1].kind, ParamKind::Bias);
        assert_eq!(lin.param_count(), 6 + 3);
    }
}
