use crate::{Param, Result};
use rt_tensor::Tensor;

/// Forward-pass mode. Train mode uses batch statistics in BatchNorm and
/// updates its running estimates; Eval mode uses the running estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mode {
    /// Training: batch statistics, caches populated for backward.
    Train,
    /// Evaluation: running statistics, no running-stat updates.
    #[default]
    Eval,
}

/// Shared execution context threaded through every [`Layer::forward`] and
/// [`Layer::backward`] call.
///
/// Bundles the forward [`Mode`] with a handle to the deterministic
/// [`rt_par`] worker pool and a logical RNG stream id, so containers like
/// [`Sequential`] pass one shared context to every child instead of a bare
/// mode flag. The struct is `Copy` and zero-cost to thread by value.
///
/// Determinism: the pool handle never influences numerics (chunking in
/// `rt-par` consumers is a pure function of problem size), and the default
/// `rng_stream` of `0` reproduces each stochastic layer's own seed
/// sequence, so `ExecCtx::train()` behaves exactly like the old
/// `Mode::Train` argument. The `sparse` flag is likewise
/// numerics-neutral: the sparse kernels are bit-identical to masked-dense
/// execution, so flipping it only changes speed, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecCtx {
    /// Train/eval switch (BatchNorm statistics, Dropout masks).
    pub mode: Mode,
    /// Handle to the deterministic data-parallel pool.
    pub pool: rt_par::Handle,
    /// Logical RNG stream folded into stochastic layers' seeds. Distinct
    /// streams draw independent randomness from the same layer seed; `0`
    /// (the default) leaves the layer's own sequence untouched.
    pub rng_stream: u64,
    /// Whether layers may execute through compiled [`rt_sparse`] plans
    /// (bit-identical to masked-dense; this flag only trades speed).
    /// Defaults to [`sparse_exec_default`], which honours `RT_SPARSE`.
    pub sparse: bool,
    /// Cooperative cancellation token, snapshotted from the calling
    /// thread's ambient token ([`rt_par::current_cancel`]) at context
    /// construction. Layers never need to touch it — `rt-par` checks at
    /// chunk boundaries automatically — but coarse-grained loops (the
    /// training loop's batch boundary) poll it via [`ExecCtx::is_cancelled`]
    /// to stop between units of work. Numerics-neutral: a token that is
    /// never tripped changes nothing.
    pub cancel: rt_par::CancelToken,
}

impl Default for ExecCtx {
    fn default() -> Self {
        ExecCtx::new(Mode::default())
    }
}

/// Process-wide default for [`ExecCtx::sparse`], cached after first read:
/// `0`/`1` = resolved value, `2` = not yet resolved.
static SPARSE_DEFAULT: std::sync::atomic::AtomicU8 = std::sync::atomic::AtomicU8::new(2);

/// The process-wide default for [`ExecCtx::sparse`]: `true` unless the
/// `RT_SPARSE` environment variable is set to `0`/`false`/`off` (read once
/// and cached). Tests should use [`set_sparse_exec_default`] instead of
/// mutating the environment.
pub fn sparse_exec_default() -> bool {
    use std::sync::atomic::Ordering;
    match SPARSE_DEFAULT.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on = !matches!(
                std::env::var("RT_SPARSE").as_deref(),
                Ok("0") | Ok("false") | Ok("off")
            );
            SPARSE_DEFAULT.store(on as u8, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the process-wide default for [`ExecCtx::sparse`] (used by
/// tests and benchmarks to compare execution paths without touching the
/// environment).
pub fn set_sparse_exec_default(on: bool) {
    SPARSE_DEFAULT.store(on as u8, std::sync::atomic::Ordering::Relaxed);
}

impl ExecCtx {
    /// A context with the given mode, the global pool, stream `0`, and the
    /// process-wide sparse-execution default.
    pub fn new(mode: Mode) -> Self {
        ExecCtx {
            mode,
            pool: rt_par::Handle,
            rng_stream: 0,
            sparse: sparse_exec_default(),
            cancel: rt_par::current_cancel(),
        }
    }

    /// Shorthand for `ExecCtx::new(Mode::Train)`.
    pub fn train() -> Self {
        Self::new(Mode::Train)
    }

    /// Shorthand for `ExecCtx::new(Mode::Eval)`.
    pub fn eval() -> Self {
        Self::new(Mode::Eval)
    }

    /// Returns a copy with the RNG stream replaced.
    #[must_use]
    pub fn with_stream(mut self, stream: u64) -> Self {
        self.rng_stream = stream;
        self
    }

    /// Returns a copy with sparse execution forced on or off.
    #[must_use]
    pub fn with_sparse(mut self, sparse: bool) -> Self {
        self.sparse = sparse;
        self
    }

    /// Whether the context is in training mode.
    pub fn is_train(self) -> bool {
        self.mode == Mode::Train
    }

    /// One relaxed load: has this context's supervision token been
    /// tripped (e.g. by the runner's deadline watchdog)? Coarse loops
    /// check this between units of work and bail with
    /// [`crate::NnError::DeadlineExceeded`].
    pub fn is_cancelled(self) -> bool {
        self.cancel.is_cancelled()
    }
}

impl From<Mode> for ExecCtx {
    fn from(mode: Mode) -> Self {
        ExecCtx::new(mode)
    }
}

/// An object-safe neural-network layer with explicit backpropagation.
///
/// Contract:
///
/// * [`Layer::forward`] consumes an activation and may cache whatever its
///   backward pass needs. Calling it again overwrites the cache.
/// * [`Layer::backward`] consumes `∂L/∂output`, **accumulates** parameter
///   gradients into each [`Param::grad`], and returns `∂L/∂input` — exact,
///   so adversarial attacks can differentiate through the whole network to
///   the pixels.
/// * Gradients accumulate across calls until [`Layer::zero_grad`].
///
/// `Send` is a supertrait so `Box<dyn Layer>` model replicas can be fanned
/// out across the [`rt_par`] pool (e.g. batch-sharded PGD); every layer
/// owns plain buffers, so this costs nothing.
pub trait Layer: Send {
    /// Computes the layer output for `input` under the execution context
    /// `ctx` (mode, pool handle, RNG stream).
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape is incompatible with the layer.
    fn forward(&mut self, input: &Tensor, ctx: ExecCtx) -> Result<Tensor>;

    /// Backpropagates `grad_output`, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input. The context
    /// carries the pool handle; its mode is ignored (backward always
    /// differentiates the cached forward pass).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BackwardBeforeForward`] if no forward pass
    /// populated the caches, or a shape error if `grad_output` is
    /// inconsistent with the cached forward pass.
    fn backward(&mut self, grad_output: &Tensor, ctx: ExecCtx) -> Result<Tensor>;

    /// All parameters of the layer (possibly none), in a stable order.
    fn params(&self) -> Vec<&Param>;

    /// Mutable access to all parameters, in the same order as
    /// [`Layer::params`].
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Zeroes every parameter gradient.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of parameter scalars.
    fn param_count(&self) -> usize {
        self.params().iter().map(|p| p.len()).sum()
    }

    /// Whether this layer is a plain ReLU activation. [`Sequential`]'s
    /// eval-mode peephole uses this marker to ask the *preceding* layer
    /// for a fused `forward + ReLU` via [`Layer::forward_relu_fused`].
    /// Default `false`.
    fn is_relu(&self) -> bool {
        false
    }

    /// Eval-mode fused `forward` + trailing ReLU, if this layer has one.
    ///
    /// Returning `Some(y)` means `y` is bit-identical to
    /// `relu(self.forward(input, ctx))` — typically computed by folding
    /// `max(v + b, 0)` into the GEMM store epilogue (see
    /// `rt_tensor::kern::Epilogue`) so the pre-activation tensor is never
    /// materialised. Returning `None` (the default) tells the caller to
    /// run `forward` and the activation separately; implementations
    /// should also return `None` in train mode or on any shape they
    /// cannot fuse, letting the plain path produce its usual errors and
    /// backward caches.
    fn forward_relu_fused(&mut self, _input: &Tensor, _ctx: ExecCtx) -> Option<Result<Tensor>> {
        None
    }

    /// For layers that report [`Layer::is_relu`]: rebuild the backward
    /// cache from the **post-activation** output of a fused
    /// `layer → ReLU` step, exactly as if `forward` had seen the
    /// pre-activation (`max(x, 0) > 0 ⟺ x > 0`, so the gradient mask is
    /// bit-identical). [`Sequential`] calls this on the skipped
    /// activation after a successful fusion, keeping eval-mode backward —
    /// adversarial attacks take input gradients through eval forwards —
    /// correct. Default: no-op.
    fn prime_relu_cache(&mut self, _output: &Tensor) {}

    /// Non-trainable state that must survive checkpointing (e.g. BatchNorm
    /// running statistics), in a stable order. Empty by default.
    fn buffers(&self) -> Vec<&Tensor> {
        Vec::new()
    }

    /// Mutable access to the buffers, in the same order as
    /// [`Layer::buffers`].
    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        Vec::new()
    }

    /// Whether **train-mode** `forward` is a pure per-sample function of
    /// `(input, params)`: no randomness (Dropout draws a fresh mask), no
    /// cross-sample coupling, and no state mutation beyond the backward
    /// cache (BatchNorm mixes batch statistics into every sample and
    /// advances its running estimates). Only pure layers may sit in a
    /// cacheable frozen prefix (see [`crate::ActCache`]): their per-sample
    /// outputs are reproducible from the sample alone, independent of
    /// batch composition. Default `true` — stateful/stochastic layers
    /// must opt out.
    fn forward_is_pure(&self) -> bool {
        true
    }

    /// Returns `Some` if this layer is a [`Sequential`] container, the
    /// only shape the frozen-prefix machinery (`split_at_trainable`,
    /// prefix/suffix execution) understands. Object-safe stand-in for
    /// downcasting; default `None`.
    fn as_sequential_mut(&mut self) -> Option<&mut Sequential> {
        None
    }
}

/// A layer that runs its children in order, threading activations forward
/// and gradients backward.
///
/// # Example
///
/// ```rust
/// use rt_nn::layers::{Flatten, Relu};
/// use rt_nn::{ExecCtx, Layer, Sequential};
/// use rt_tensor::Tensor;
///
/// # fn main() -> Result<(), rt_nn::NnError> {
/// let mut seq = Sequential::new(vec![Box::new(Relu::new()), Box::new(Flatten::new())]);
/// let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![-1.0, 2.0, -3.0, 4.0])?;
/// let y = seq.forward(&x, ExecCtx::eval())?;
/// assert_eq!(y.shape(), &[1, 4]);
/// assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
/// # Ok(())
/// # }
/// ```
pub struct Sequential {
    children: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Builds a sequential container from child layers.
    pub fn new(children: Vec<Box<dyn Layer>>) -> Self {
        Sequential { children }
    }

    /// An empty container (children can be pushed later).
    pub fn empty() -> Self {
        Sequential {
            children: Vec::new(),
        }
    }

    /// Appends a child layer.
    pub fn push(&mut self, layer: Box<dyn Layer>) {
        self.children.push(layer);
    }

    /// Number of child layers.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// Whether the container has no children.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Immutable access to the child layers.
    pub fn children(&self) -> &[Box<dyn Layer>] {
        &self.children
    }

    /// Mutable access to the child layers.
    pub fn children_mut(&mut self) -> &mut [Box<dyn Layer>] {
        &mut self.children
    }

    /// Length of the longest cacheable frozen prefix: the run of leading
    /// children that are pure per-sample functions
    /// ([`Layer::forward_is_pure`]), carry no mutable buffers, and whose
    /// parameters are all frozen (`trainable == false`, which also pins
    /// their masks — the optimizer never touches them). Everything before
    /// the returned index recomputes identical per-sample activations
    /// every epoch; `0` means no cacheable prefix.
    pub fn split_at_trainable(&self) -> usize {
        self.children
            .iter()
            .position(|c| {
                !c.forward_is_pure()
                    || !c.buffers().is_empty()
                    || c.params().iter().any(|p| p.trainable)
            })
            .unwrap_or(self.children.len())
    }

    /// Runs children `[0, split)` in order — the plain (unfused) path, so
    /// the result is bit-identical to the corresponding segment of a
    /// train-mode [`Layer::forward`]. With `split == 0` this is the
    /// identity.
    ///
    /// # Errors
    ///
    /// As [`Layer::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `split > self.len()`.
    pub fn forward_prefix(&mut self, input: &Tensor, ctx: ExecCtx, split: usize) -> Result<Tensor> {
        assert!(split <= self.children.len(), "split out of range");
        let mut x = input.clone();
        for child in &mut self.children[..split] {
            x = child.forward(&x, ctx)?;
        }
        Ok(x)
    }

    /// Runs children `[split, len)` in order on `mid` (the prefix output,
    /// fresh or cache-assembled — identical bytes either way), the plain
    /// path as in [`Sequential::forward_prefix`].
    ///
    /// # Errors
    ///
    /// As [`Layer::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `split > self.len()`.
    pub fn forward_suffix(&mut self, mid: &Tensor, ctx: ExecCtx, split: usize) -> Result<Tensor> {
        assert!(split <= self.children.len(), "split out of range");
        let mut x = mid.clone();
        for child in &mut self.children[split..] {
            x = child.forward(&x, ctx)?;
        }
        Ok(x)
    }

    /// Backpropagates through children `[split, len)` only, returning the
    /// gradient at the split boundary. Skipping the frozen prefix is
    /// unobservable: its parameters are non-trainable, so the optimizer
    /// zeroes (and never applies) any gradient they would have received.
    ///
    /// # Errors
    ///
    /// As [`Layer::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `split > self.len()`.
    pub fn backward_suffix(
        &mut self,
        grad_output: &Tensor,
        ctx: ExecCtx,
        split: usize,
    ) -> Result<Tensor> {
        assert!(split <= self.children.len(), "split out of range");
        let mut g = grad_output.clone();
        for child in self.children[split..].iter_mut().rev() {
            g = child.backward(&g, ctx)?;
        }
        Ok(g)
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("children", &self.children.len())
            .field("params", &self.param_count())
            .finish()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, input: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let mut x = input.clone();
        let mut i = 0;
        while i < self.children.len() {
            // Eval-mode peephole: a `layer → ReLU` pair runs the layer's
            // fused epilogue and skips the activation entirely. Fusion is
            // bit-identical by contract and eval-only: train mode needs
            // the activation's own forward to populate its backward cache.
            if !ctx.is_train() && self.children.get(i + 1).is_some_and(|c| c.is_relu()) {
                if let Some(res) = self.children[i].forward_relu_fused(&x, ctx) {
                    x = res?;
                    // Rebuild the skipped activation's backward cache from
                    // the post-activation bytes: eval-mode backward (e.g.
                    // adversarial input gradients) must keep working.
                    self.children[i + 1].prime_relu_cache(&x);
                    i += 2;
                    continue;
                }
            }
            x = self.children[i].forward(&x, ctx)?;
            i += 1;
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Tensor, ctx: ExecCtx) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for child in self.children.iter_mut().rev() {
            g = child.backward(&g, ctx)?;
        }
        Ok(g)
    }

    fn params(&self) -> Vec<&Param> {
        self.children.iter().flat_map(|c| c.params()).collect()
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.children
            .iter_mut()
            .flat_map(|c| c.params_mut())
            .collect()
    }

    fn buffers(&self) -> Vec<&Tensor> {
        self.children.iter().flat_map(|c| c.buffers()).collect()
    }

    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.children
            .iter_mut()
            .flat_map(|c| c.buffers_mut())
            .collect()
    }

    fn as_sequential_mut(&mut self) -> Option<&mut Sequential> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};
    use rt_tensor::rng::rng_from_seed;

    #[test]
    fn sequential_threads_forward_and_backward() {
        let mut rng = rng_from_seed(0);
        let mut seq = Sequential::new(vec![
            Box::new(Linear::new(3, 5, &mut rng).unwrap()),
            Box::new(Relu::new()),
            Box::new(Linear::new(5, 2, &mut rng).unwrap()),
        ]);
        let x = Tensor::ones(&[4, 3]);
        let ctx = ExecCtx::train();
        let y = seq.forward(&x, ctx).unwrap();
        assert_eq!(y.shape(), &[4, 2]);
        let gin = seq.backward(&Tensor::ones(&[4, 2]), ctx).unwrap();
        assert_eq!(gin.shape(), &[4, 3]);
        // Parameters received gradients.
        assert!(seq.params().iter().any(|p| p.grad.l1_norm() > 0.0));
        seq.zero_grad();
        assert!(seq.params().iter().all(|p| p.grad.l1_norm() == 0.0));
    }

    /// The eval-mode `layer → ReLU` peephole must be invisible: same
    /// bits as running the pair unfused, and disabled in train mode so
    /// the activation's backward cache still gets populated.
    #[test]
    fn sequential_relu_peephole_is_bit_identical() {
        let mk = || {
            let mut rng = rng_from_seed(3);
            Sequential::new(vec![
                Box::new(Linear::new(24, 20, &mut rng).unwrap()) as Box<dyn Layer>,
                Box::new(Relu::new()),
                Box::new(Linear::new(20, 6, &mut rng).unwrap()),
            ])
        };
        // 32×24 input makes the first pair packable → fused epilogue.
        let x = Tensor::from_fn(&[32, 24], |i| ((i % 11) as f32 - 5.0) * 0.3);
        let mut fused = mk();
        let y_eval = fused.forward(&x, ExecCtx::eval()).unwrap();
        // Unfused reference: run children one by one (no peephole).
        let mut plain = mk();
        let mut want = x.clone();
        for child in 0..plain.len() {
            want = plain.children_mut()[child].forward(&want, ExecCtx::eval()).unwrap();
        }
        for (a, b) in y_eval.data().iter().zip(want.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "peephole changed eval bits");
        }
        // Eval-mode backward must still work after fusion (adversarial
        // attacks take input gradients through eval forwards) and match
        // the unfused chain bit-for-bit: the skipped ReLU's cache is
        // primed from the post-activation bytes.
        let g = Tensor::from_fn(&[32, 6], |i| ((i % 7) as f32 - 3.0) * 0.5);
        let gin_fused = fused.backward(&g, ExecCtx::eval()).unwrap();
        let mut gin_plain = g.clone();
        for child in (0..plain.len()).rev() {
            gin_plain = plain.children_mut()[child].backward(&gin_plain, ExecCtx::eval()).unwrap();
        }
        for (a, b) in gin_fused.data().iter().zip(gin_plain.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "peephole changed eval backward bits");
        }
        // Train mode takes the plain path and backward works end to end.
        let mut train = mk();
        let y_train = train.forward(&x, ExecCtx::train()).unwrap();
        assert_eq!(y_train.shape(), &[32, 6]);
        let gin = train.backward(&Tensor::ones(&[32, 6]), ExecCtx::train()).unwrap();
        assert_eq!(gin.shape(), &[32, 24]);
    }

    #[test]
    fn param_count_sums_children() {
        let mut rng = rng_from_seed(1);
        let seq = Sequential::new(vec![
            Box::new(Linear::new(3, 5, &mut rng).unwrap()),
            Box::new(Linear::new(5, 2, &mut rng).unwrap()),
        ]);
        // (3*5 + 5) + (5*2 + 2)
        assert_eq!(seq.param_count(), 20 + 12);
        assert_eq!(seq.len(), 2);
        assert!(!seq.is_empty());
    }

    #[test]
    fn empty_sequential_is_identity() {
        let mut seq = Sequential::empty();
        assert!(seq.is_empty());
        let x = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();
        assert_eq!(seq.forward(&x, ExecCtx::eval()).unwrap(), x);
        assert_eq!(seq.backward(&x, ExecCtx::eval()).unwrap(), x);
    }

    #[test]
    fn exec_ctx_defaults_and_conversions() {
        assert_eq!(ExecCtx::default().mode, Mode::Eval);
        assert_eq!(ExecCtx::train().mode, Mode::Train);
        assert!(ExecCtx::train().is_train());
        assert!(!ExecCtx::eval().is_train());
        assert_eq!(ExecCtx::from(Mode::Train), ExecCtx::train());
        assert_eq!(ExecCtx::eval().rng_stream, 0);
        assert_eq!(ExecCtx::eval().with_stream(7).rng_stream, 7);
        assert_eq!(ExecCtx::eval().sparse, sparse_exec_default());
        assert!(ExecCtx::eval().with_sparse(true).sparse);
        assert!(!ExecCtx::eval().with_sparse(false).sparse);
    }
}
