//! Loss functions. Each returns the scalar loss *and* the gradient with
//! respect to its first argument, so callers never re-derive the chain rule.

use crate::{NnError, Result};
use rt_tensor::{special, Tensor, TensorError};

/// Result of a loss evaluation: the batch-mean scalar and the gradient of
/// that scalar with respect to the predictions.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Batch-mean loss value.
    pub loss: f32,
    /// `∂loss/∂predictions`, same shape as the predictions.
    pub grad: Tensor,
}

/// Fused softmax + cross-entropy with optional label smoothing.
///
/// The fused formulation gives the numerically clean logit gradient
/// `(softmax(z) − target) / N` directly.
///
/// # Example
///
/// ```rust
/// use rt_nn::loss::CrossEntropyLoss;
/// use rt_tensor::Tensor;
///
/// # fn main() -> Result<(), rt_nn::NnError> {
/// let logits = Tensor::from_vec(vec![1, 3], vec![2.0, 0.0, 0.0])?;
/// let out = CrossEntropyLoss::new().forward(&logits, &[0])?;
/// assert!(out.loss < 1.0); // confident-and-correct is cheap
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CrossEntropyLoss {
    smoothing: f32,
}

impl CrossEntropyLoss {
    /// Creates an unsmoothed cross-entropy loss.
    pub fn new() -> Self {
        CrossEntropyLoss { smoothing: 0.0 }
    }

    /// Creates a label-smoothed cross-entropy (`smoothing` mass spread
    /// uniformly over all classes).
    ///
    /// # Panics
    ///
    /// Panics if `smoothing` is outside `[0, 1)`.
    pub fn with_smoothing(smoothing: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&smoothing),
            "label smoothing must be in [0, 1)"
        );
        CrossEntropyLoss { smoothing }
    }

    /// Computes the batch-mean cross-entropy of `[N, K]` logits against `N`
    /// class labels, and its logit gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BatchMismatch`] if `labels.len() != N` and
    /// [`NnError::LabelOutOfRange`] for labels `>= K`.
    pub fn forward(&self, logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
        if logits.ndim() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: logits.ndim(),
                op: "cross_entropy",
            }
            .into());
        }
        let (n, k) = (logits.shape()[0], logits.shape()[1]);
        if labels.len() != n {
            return Err(NnError::BatchMismatch {
                predictions: n,
                targets: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
            return Err(NnError::LabelOutOfRange {
                label: bad,
                classes: k,
            });
        }
        let log_probs = special::log_softmax_rows(logits)?;
        let probs = log_probs.map(f32::exp);
        let uniform = self.smoothing / k as f32;
        let on_target = 1.0 - self.smoothing + uniform;
        let inv_n = 1.0 / n as f32;

        let mut loss = 0.0f32;
        let mut grad = probs.clone();
        {
            let gd = grad.data_mut();
            let lp = log_probs.data();
            for (i, &label) in labels.iter().enumerate() {
                let row = i * k;
                // loss_i = −Σ_c target_c · log p_c
                loss -= (on_target - uniform) * lp[row + label];
                if self.smoothing > 0.0 {
                    loss -= uniform * lp[row..row + k].iter().sum::<f32>();
                }
                // grad = (p − target) / N
                for c in 0..k {
                    let target = if c == label { on_target } else { uniform };
                    gd[row + c] = (gd[row + c] - target) * inv_n;
                }
            }
        }
        Ok(LossOutput {
            loss: loss * inv_n,
            grad,
        })
    }

    /// Per-pixel cross-entropy for dense prediction: `[N, K, H, W]` logits
    /// against `N·H·W` labels in row-major `(n, y, x)` order. Pixels labeled
    /// [`IGNORE_LABEL`] contribute neither loss nor gradient.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BatchMismatch`] / [`NnError::LabelOutOfRange`] on
    /// inconsistent labels, and a rank error for non-NCHW logits.
    pub fn forward_pixels(&self, logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
        if logits.ndim() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                actual: logits.ndim(),
                op: "cross_entropy_pixels",
            }
            .into());
        }
        let s = logits.shape();
        let (n, k, h, w) = (s[0], s[1], s[2], s[3]);
        let pixels = n * h * w;
        if labels.len() != pixels {
            return Err(NnError::BatchMismatch {
                predictions: pixels,
                targets: labels.len(),
            });
        }
        // Gather each pixel's class scores into a row matrix, reuse the 2-D
        // path, then scatter the gradient back into NCHW layout.
        let mut rows = vec![0.0f32; pixels * k];
        let ld = logits.data();
        let plane = h * w;
        for b in 0..n {
            for p in 0..plane {
                let row = b * plane + p;
                for c in 0..k {
                    rows[row * k + c] = ld[(b * k + c) * plane + p];
                }
            }
        }
        let row_logits = Tensor::from_vec(vec![pixels, k], rows)?;
        // Replace ignored pixels with label 0 for the dense computation,
        // then zero their contribution.
        let valid: Vec<bool> = labels.iter().map(|&l| l != IGNORE_LABEL).collect();
        let safe_labels: Vec<usize> = labels
            .iter()
            .map(|&l| if l == IGNORE_LABEL { 0 } else { l })
            .collect();
        if let Some(&bad) = safe_labels.iter().find(|&&l| l >= k) {
            return Err(NnError::LabelOutOfRange {
                label: bad,
                classes: k,
            });
        }
        let log_probs = special::log_softmax_rows(&row_logits)?;
        let probs = log_probs.map(f32::exp);
        let valid_count = valid.iter().filter(|&&v| v).count().max(1);
        let inv = 1.0 / valid_count as f32;
        let uniform = self.smoothing / k as f32;
        let on_target = 1.0 - self.smoothing + uniform;

        let mut loss = 0.0f32;
        let mut grad_rows = probs;
        {
            let gd = grad_rows.data_mut();
            let lp = log_probs.data();
            for (i, (&label, &is_valid)) in safe_labels.iter().zip(&valid).enumerate() {
                let row = i * k;
                if !is_valid {
                    gd[row..row + k].iter_mut().for_each(|g| *g = 0.0);
                    continue;
                }
                loss -= (on_target - uniform) * lp[row + label];
                if self.smoothing > 0.0 {
                    loss -= uniform * lp[row..row + k].iter().sum::<f32>();
                }
                for c in 0..k {
                    let target = if c == label { on_target } else { uniform };
                    gd[row + c] = (gd[row + c] - target) * inv;
                }
            }
        }
        // Scatter back to NCHW.
        let mut grad = Tensor::zeros(logits.shape());
        let gdst = grad.data_mut();
        let gsrc = grad_rows.data();
        for b in 0..n {
            for p in 0..plane {
                let row = b * plane + p;
                for c in 0..k {
                    gdst[(b * k + c) * plane + p] = gsrc[row * k + c];
                }
            }
        }
        Ok(LossOutput {
            loss: loss * inv,
            grad,
        })
    }
}

/// Sentinel label for pixels excluded from the segmentation loss
/// (e.g. boundary pixels, matching PASCAL VOC's ignore region).
pub const IGNORE_LABEL: usize = usize::MAX;

/// Mean-squared error: `mean((pred − target)²)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MseLoss;

impl MseLoss {
    /// Creates an MSE loss.
    pub fn new() -> Self {
        MseLoss
    }

    /// Computes the MSE and its gradient with respect to `pred`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the operands differ in shape.
    pub fn forward(&self, pred: &Tensor, target: &Tensor) -> Result<LossOutput> {
        let diff = pred.sub(target)?;
        let n = diff.len().max(1) as f32;
        let loss = diff.data().iter().map(|&d| d * d).sum::<f32>() / n;
        let grad = diff.mul_scalar(2.0 / n);
        Ok(LossOutput { loss, grad })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k() {
        let logits = Tensor::zeros(&[2, 4]);
        let out = CrossEntropyLoss::new().forward(&logits, &[0, 3]).unwrap();
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1.0, -2.0, 0.5, 3.0, 3.0, -1.0]).unwrap();
        let out = CrossEntropyLoss::new().forward(&logits, &[2, 0]).unwrap();
        for i in 0..2 {
            let s: f32 = out.grad.data()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![1, 3], vec![0.3, -0.7, 1.1]).unwrap();
        let labels = [1usize];
        let loss_fn = CrossEntropyLoss::new();
        let out = loss_fn.forward(&logits, &labels).unwrap();
        let eps = 1e-3;
        for i in 0..3 {
            let mut plus = logits.clone();
            plus.data_mut()[i] += eps;
            let mut minus = logits.clone();
            minus.data_mut()[i] -= eps;
            let num = (loss_fn.forward(&plus, &labels).unwrap().loss
                - loss_fn.forward(&minus, &labels).unwrap().loss)
                / (2.0 * eps);
            assert!(
                (num - out.grad.data()[i]).abs() < 1e-3,
                "dim {i}: numeric {num} vs analytic {}",
                out.grad.data()[i]
            );
        }
    }

    #[test]
    fn label_smoothing_softens_target() {
        let logits = Tensor::from_vec(vec![1, 2], vec![10.0, -10.0]).unwrap();
        let sharp = CrossEntropyLoss::new().forward(&logits, &[0]).unwrap();
        let smooth = CrossEntropyLoss::with_smoothing(0.2)
            .forward(&logits, &[0])
            .unwrap();
        // Smoothing penalizes over-confidence: higher loss for a confident
        // correct prediction.
        assert!(smooth.loss > sharp.loss);
    }

    #[test]
    #[should_panic(expected = "label smoothing")]
    fn invalid_smoothing_panics() {
        let _ = CrossEntropyLoss::with_smoothing(1.0);
    }

    #[test]
    fn validation_errors() {
        let logits = Tensor::zeros(&[2, 3]);
        let loss = CrossEntropyLoss::new();
        assert!(matches!(
            loss.forward(&logits, &[0]),
            Err(NnError::BatchMismatch { .. })
        ));
        assert!(matches!(
            loss.forward(&logits, &[0, 3]),
            Err(NnError::LabelOutOfRange { .. })
        ));
        assert!(loss.forward(&Tensor::zeros(&[3]), &[0]).is_err());
    }

    #[test]
    fn pixel_loss_matches_dense_loss_on_1x1_images() {
        // A [N, K, 1, 1] pixel loss is exactly the [N, K] dense loss.
        let logits2d = Tensor::from_vec(vec![2, 3], vec![1.0, 0.0, -1.0, 0.5, 0.2, 0.9]).unwrap();
        let logits4d = logits2d.reshape(&[2, 3, 1, 1]).unwrap();
        let labels = [0usize, 2];
        let loss = CrossEntropyLoss::new();
        let dense = loss.forward(&logits2d, &labels).unwrap();
        let pix = loss.forward_pixels(&logits4d, &labels).unwrap();
        assert!((dense.loss - pix.loss).abs() < 1e-6);
        for (a, b) in dense.grad.data().iter().zip(pix.grad.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn ignored_pixels_contribute_nothing() {
        let logits = Tensor::from_fn(&[1, 2, 1, 2], |i| i as f32);
        let loss = CrossEntropyLoss::new();
        let full = loss.forward_pixels(&logits, &[0, 1]).unwrap();
        let half = loss.forward_pixels(&logits, &[0, IGNORE_LABEL]).unwrap();
        assert!(full.loss != half.loss);
        // Ignored pixel's gradient column is zero.
        assert_eq!(half.grad.at(&[0, 0, 0, 1]).unwrap(), 0.0);
        assert_eq!(half.grad.at(&[0, 1, 0, 1]).unwrap(), 0.0);
    }

    #[test]
    fn mse_loss_and_gradient() {
        let pred = Tensor::from_vec(vec![2], vec![1.0, 3.0]).unwrap();
        let target = Tensor::from_vec(vec![2], vec![0.0, 1.0]).unwrap();
        let out = MseLoss::new().forward(&pred, &target).unwrap();
        assert!((out.loss - 2.5).abs() < 1e-6); // (1 + 4) / 2
        assert_eq!(out.grad.data(), &[1.0, 2.0]); // 2·diff / n
    }
}
