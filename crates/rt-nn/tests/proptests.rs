//! Property-based tests for layer/loss/optimizer invariants.

use proptest::prelude::*;
use rt_nn::layers::{BatchNorm2d, Conv2d, Conv2dConfig, Linear, Relu};
use rt_nn::loss::{CrossEntropyLoss, MseLoss};
use rt_nn::optim::Sgd;
use rt_nn::{ExecCtx, Layer};
use rt_tensor::rng::rng_from_seed;
use rt_tensor::{init, Tensor};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Linear layers are, well, linear: f(ax) - f(0) = a(f(x) - f(0)).
    #[test]
    fn linear_layer_is_affine(seed in 0u64..100, a in -3.0f32..3.0) {
        let mut rng = rng_from_seed(seed);
        let mut lin = Linear::new(5, 3, &mut rng).unwrap();
        let x = init::normal(&[2, 5], 0.0, 1.0, &mut rng);
        let zero = Tensor::zeros(&[2, 5]);
        let fx = lin.forward(&x, ExecCtx::eval()).unwrap();
        let f0 = lin.forward(&zero, ExecCtx::eval()).unwrap();
        let fax = lin.forward(&x.mul_scalar(a), ExecCtx::eval()).unwrap();
        for i in 0..fx.len() {
            let lhs = fax.data()[i] - f0.data()[i];
            let rhs = a * (fx.data()[i] - f0.data()[i]);
            prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + rhs.abs()));
        }
    }

    /// Convolution commutes with input scaling (bias-free conv is linear).
    #[test]
    fn conv_is_homogeneous(seed in 0u64..100, a in 0.1f32..3.0) {
        let mut rng = rng_from_seed(seed);
        let mut conv = Conv2d::new(2, 3, Conv2dConfig::same3x3(), &mut rng).unwrap();
        let x = init::normal(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let fx = conv.forward(&x, ExecCtx::eval()).unwrap();
        let fax = conv.forward(&x.mul_scalar(a), ExecCtx::eval()).unwrap();
        for (l, r) in fax.data().iter().zip(fx.data()) {
            prop_assert!((l - a * r).abs() < 1e-3 * (1.0 + (a * r).abs()));
        }
    }

    /// ReLU output is non-negative and idempotent.
    #[test]
    fn relu_properties(seed in 0u64..100) {
        let mut relu = Relu::new();
        let x = init::normal(&[3, 7], 0.0, 2.0, &mut rng_from_seed(seed));
        let y = relu.forward(&x, ExecCtx::eval()).unwrap();
        prop_assert!(y.min().unwrap() >= 0.0);
        let yy = relu.forward(&y, ExecCtx::eval()).unwrap();
        prop_assert_eq!(yy, y);
    }

    /// BatchNorm in train mode is invariant to affine rescaling of its
    /// input: bn(a·x + b) == bn(x) for a > 0 (per-channel statistics absorb
    /// it).
    #[test]
    fn batchnorm_absorbs_input_affine(seed in 0u64..50, a in 0.2f32..4.0, b in -2.0f32..2.0) {
        let mut bn1 = BatchNorm2d::new(2);
        let mut bn2 = BatchNorm2d::new(2);
        let x = init::normal(&[4, 2, 3, 3], 0.0, 1.0, &mut rng_from_seed(seed));
        let y1 = bn1.forward(&x, ExecCtx::train()).unwrap();
        let scaled = x.mul_scalar(a).add_scalar(b);
        let y2 = bn2.forward(&scaled, ExecCtx::train()).unwrap();
        for (u, v) in y1.data().iter().zip(y2.data()) {
            prop_assert!((u - v).abs() < 2e-2, "{u} vs {v}");
        }
    }

    /// Cross-entropy is minimized by the true label: pushing the correct
    /// logit up never increases the loss.
    #[test]
    fn ce_decreases_with_correct_logit(seed in 0u64..100, boost in 0.1f32..5.0) {
        let mut rng = rng_from_seed(seed);
        let logits = init::normal(&[1, 4], 0.0, 1.0, &mut rng);
        let label = [2usize];
        let loss = CrossEntropyLoss::new();
        let base = loss.forward(&logits, &label).unwrap().loss;
        let mut boosted = logits.clone();
        boosted.data_mut()[2] += boost;
        let better = loss.forward(&boosted, &label).unwrap().loss;
        prop_assert!(better <= base + 1e-6);
    }

    /// The CE gradient at the true label is negative, and positive
    /// everywhere else (softmax minus one-hot).
    #[test]
    fn ce_gradient_signs(seed in 0u64..100) {
        let mut rng = rng_from_seed(seed);
        let logits = init::normal(&[2, 5], 0.0, 1.5, &mut rng);
        let labels = [1usize, 4];
        let out = CrossEntropyLoss::new().forward(&logits, &labels).unwrap();
        for (i, &label) in labels.iter().enumerate() {
            for c in 0..5 {
                let g = out.grad.data()[i * 5 + c];
                if c == label {
                    prop_assert!(g < 0.0);
                } else {
                    prop_assert!(g > 0.0);
                }
            }
        }
    }

    /// MSE is zero iff prediction equals target, and symmetric.
    #[test]
    fn mse_properties(seed in 0u64..100) {
        let mut rng = rng_from_seed(seed);
        let a = init::normal(&[6], 0.0, 1.0, &mut rng);
        let b = init::normal(&[6], 0.0, 1.0, &mut rng);
        let loss = MseLoss::new();
        prop_assert!(loss.forward(&a, &a).unwrap().loss < 1e-12);
        let ab = loss.forward(&a, &b).unwrap().loss;
        let ba = loss.forward(&b, &a).unwrap().loss;
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!(ab >= 0.0);
    }

    /// One SGD step with learning rate 0+ε moves weights by O(ε): the
    /// update is proportional to the learning rate.
    #[test]
    fn sgd_step_scales_with_lr(seed in 0u64..50, lr in 0.001f32..0.1) {
        let mut rng = rng_from_seed(seed);
        let mut m1 = Linear::new(3, 2, &mut rng).unwrap();
        let mut m2 = Linear::new(3, 2, &mut rng_from_seed(seed)).unwrap();
        // Same deterministic gradient on both.
        for m in [&mut m1, &mut m2] {
            for p in m.params_mut() {
                p.grad.fill(1.0);
            }
        }
        Sgd::new(lr).step(&mut m1).unwrap();
        Sgd::new(2.0 * lr).step(&mut m2).unwrap();
        // m2 moved exactly twice as far (no momentum, no decay).
        let w0 = Linear::new(3, 2, &mut rng_from_seed(seed)).unwrap();
        for ((p1, p2), p0) in m1.params().iter().zip(m2.params()).zip(w0.params()) {
            for ((&a, &b), &o) in p1.data.data().iter().zip(p2.data.data()).zip(p0.data.data()) {
                let d1 = o - a;
                let d2 = o - b;
                prop_assert!((d2 - 2.0 * d1).abs() < 1e-5);
            }
        }
    }
}

/// A full training epoch — forward, cross-entropy, backward, SGD — must
/// be byte-identical under any rt-par pool size (the acceptance gate for
/// the deterministic data-parallel layer).
#[test]
fn training_epoch_is_pool_size_invariant() {
    use rt_nn::layers::Flatten;
    use rt_nn::{ExecCtx, Sequential};

    fn run_epoch() -> Vec<u32> {
        let mut rng = rng_from_seed(42);
        let mut model = Sequential::new(vec![
            Box::new(Conv2d::new(2, 4, Conv2dConfig::same3x3(), &mut rng).unwrap()),
            Box::new(BatchNorm2d::new(4)),
            Box::new(Relu::new()),
            Box::new(Flatten::new()),
            Box::new(Linear::new(4 * 8 * 8, 4, &mut rng).unwrap()),
        ]);
        let loss_fn = CrossEntropyLoss::new();
        let opt = Sgd::new(0.05);
        let ctx = ExecCtx::train();
        for step in 0..3 {
            let x = init::normal(&[6, 2, 8, 8], 0.0, 1.0, &mut rng);
            let labels: Vec<usize> = (0..6).map(|i| (i + step) % 4).collect();
            let out = model.forward(&x, ctx).unwrap();
            let l = loss_fn.forward(&out, &labels).unwrap();
            model.zero_grad();
            model.backward(&l.grad, ctx).unwrap();
            opt.step(&mut model).unwrap();
        }
        model
            .params()
            .iter()
            .flat_map(|p| p.data.data().iter().map(|v| v.to_bits()))
            .chain(
                model
                    .buffers()
                    .iter()
                    .flat_map(|b| b.data().iter().map(|v| v.to_bits())),
            )
            .collect()
    }

    rt_par::set_threads(1);
    let reference = run_epoch();
    for t in [2usize, 4, 7] {
        rt_par::set_threads(t);
        let got = run_epoch();
        rt_par::set_threads(1);
        assert_eq!(got, reference, "pool size {t} diverged");
    }
}
