//! End-to-end service tests: batched-vs-serial bit-identity under
//! arbitrary interleavings, structured rejection, deadline expiry, and
//! drain-on-shutdown.
//!
//! Concurrency in these tests flows through `rt_par::run_tasks` (the
//! workspace's only sanctioned fan-out), with each task index acting as
//! one closed-loop client.

use proptest::prelude::*;
use rt_nn::checkpoint::StateDict;
use rt_nn::layers::{Linear, Relu};
use rt_nn::{ExecCtx, Layer, Rejected, RtError, Sequential};
use rt_prune::TicketMask;
use rt_serve::{ModelSpec, ServeConfig, Service};
use rt_tensor::rng::rng_from_seed;
use rt_tensor::Tensor;
use std::sync::Mutex;
use std::time::Duration;

const IN_DIM: usize = 6;
const OUT_DIM: usize = 4;

fn mlp(seed: u64) -> Sequential {
    let mut rng = rng_from_seed(seed);
    Sequential::new(vec![
        Box::new(Linear::new(IN_DIM, 16, &mut rng).unwrap()),
        Box::new(Relu::new()),
        Box::new(Linear::new(16, OUT_DIM, &mut rng).unwrap()),
    ])
}

fn sample(i: usize) -> Tensor {
    Tensor::from_fn(&[IN_DIM], |j| ((i * 31 + j * 7) % 13) as f32 / 6.5 - 1.0)
}

/// The ground truth the service must reproduce bitwise: a one-sample
/// forward (`[1, IN_DIM]`) through an identically restored model.
fn serial_bits(model: &mut dyn Layer, i: usize) -> Vec<u32> {
    let s = sample(i);
    let mut data = Vec::with_capacity(IN_DIM);
    data.extend_from_slice(s.data());
    let x = Tensor::from_vec(vec![1, IN_DIM], data).unwrap();
    let y = model.forward(&x, ExecCtx::eval()).unwrap();
    y.data().iter().map(|v| v.to_bits()).collect()
}

fn bits_of(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn spec_for(seed: u64) -> ModelSpec {
    let model = mlp(seed);
    let snapshot = StateDict::capture(&model);
    ModelSpec::new(snapshot, move || Ok(Box::new(mlp(0))))
}

/// A mask keeping roughly a quarter of the first Linear's weights.
fn quarter_ticket(seed: u64) -> TicketMask {
    let model = mlp(seed);
    let mut ticket = TicketMask::dense(&model);
    ticket.set_slot(
        0,
        Some(Tensor::from_fn(&[16, IN_DIM], |i| {
            if i % 4 == 0 {
                1.0
            } else {
                0.0
            }
        })),
    );
    ticket
}

/// Submits `n` concurrent clients and returns each request's result.
fn run_clients(
    service: &Service,
    key: u64,
    n: usize,
    budget: impl Fn(usize) -> Option<Duration> + Sync,
) -> Vec<Result<Tensor, RtError>> {
    let results: Vec<Mutex<Option<Result<Tensor, RtError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    rt_par::run_tasks(n, &|i| {
        let out = service.infer_with_deadline(key, sample(i), budget(i));
        *results[i].lock().unwrap() = Some(out);
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("client task completed"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The tentpole invariant: for any request count, flush threshold,
    /// and thread count, every concurrent client receives exactly the
    /// bytes a serial one-sample forward produces — batch composition
    /// and arrival order are unobservable in the output.
    #[test]
    fn any_interleaving_is_bit_identical_to_serial(
        n in 1usize..12,
        max_batch in 1usize..6,
        threads in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let _env = rt_obs::testing::lock();
        rt_par::set_threads(threads);
        let mut reference = mlp(7);
        let expected: Vec<Vec<u32>> =
            (0..n).map(|i| serial_bits(&mut reference, i)).collect();

        let cfg = ServeConfig::builder()
            .max_batch(max_batch)
            .max_wait_ms(1)
            .queue_cap(64)
            .build()
            .unwrap();
        let service = Service::new(cfg);
        let key = service.admit(spec_for(7)).unwrap();
        let got = run_clients(&service, key, n, |_| None);
        service.shutdown();

        for (i, result) in got.into_iter().enumerate() {
            let y = result.unwrap_or_else(|e| panic!("request {i} failed: {e}"));
            prop_assert_eq!(y.shape(), &[OUT_DIM][..]);
            prop_assert_eq!(bits_of(&y), expected[i].clone());
        }
        let stats = service.stats();
        prop_assert_eq!(stats.completed, n as u64);
        prop_assert_eq!(stats.queued, 0);
    }
}

#[test]
fn ticketed_model_serves_bit_identically_and_sparse_plans_compile() {
    let _env = rt_obs::testing::lock();
    rt_par::set_threads(4);
    // Serial reference: restore + mask by hand, then one-sample forwards.
    let mut reference = mlp(11);
    let snapshot = StateDict::capture(&reference);
    let ticket = quarter_ticket(11);
    snapshot.restore(&mut reference).unwrap();
    ticket.apply(&mut reference).unwrap();
    assert!(
        reference.params()[0].plan.is_some(),
        "mask application must compile a sparse plan"
    );
    let expected: Vec<Vec<u32>> = (0..6).map(|i| serial_bits(&mut reference, i)).collect();

    let cfg = ServeConfig::builder()
        .max_batch(3)
        .max_wait_ms(1)
        .build()
        .unwrap();
    let service = Service::new(cfg);
    let key = service
        .admit(spec_for(11).with_ticket(quarter_ticket(11)))
        .unwrap();
    let got = run_clients(&service, key, 6, |_| None);
    service.shutdown();
    for (i, result) in got.into_iter().enumerate() {
        assert_eq!(bits_of(&result.unwrap()), expected[i], "request {i}");
    }
}

/// A layer that stalls in forward before delegating — long enough for
/// admissions (or a watchdog) to land while a batch is mid-execution.
struct Slow {
    inner: Sequential,
    stall: Duration,
}

impl Layer for Slow {
    fn forward(&mut self, input: &Tensor, ctx: ExecCtx) -> rt_nn::Result<Tensor> {
        std::thread::sleep(self.stall);
        self.inner.forward(input, ctx)
    }
    fn backward(&mut self, grad: &Tensor, ctx: ExecCtx) -> rt_nn::Result<Tensor> {
        self.inner.backward(grad, ctx)
    }
    fn params(&self) -> Vec<&rt_nn::Param> {
        self.inner.params()
    }
    fn params_mut(&mut self) -> Vec<&mut rt_nn::Param> {
        self.inner.params_mut()
    }
    fn buffers(&self) -> Vec<&Tensor> {
        self.inner.buffers()
    }
    fn buffers_mut(&mut self) -> Vec<&mut Tensor> {
        self.inner.buffers_mut()
    }
}

fn slow_spec(seed: u64, stall: Duration) -> ModelSpec {
    let model = mlp(seed);
    let snapshot = StateDict::capture(&model);
    ModelSpec::new(snapshot, move || {
        Ok(Box::new(Slow {
            inner: mlp(0),
            stall,
        }))
    })
}

#[test]
fn full_queue_rejects_with_structured_backpressure() {
    let _env = rt_obs::testing::lock();
    rt_par::set_threads(4);
    // One leader stalls 200 ms per flush; with a queue bound of 2 and
    // four concurrent clients, the last arrival must be turned away.
    let cfg = ServeConfig::builder()
        .max_batch(1)
        .max_wait_ms(0)
        .queue_cap(2)
        .build()
        .unwrap();
    let service = Service::new(cfg);
    let key = service
        .admit(slow_spec(3, Duration::from_millis(200)))
        .unwrap();
    let results = run_clients(&service, key, 4, |_| None);
    service.shutdown();

    let rejected: Vec<&RtError> = results
        .iter()
        .filter_map(|r| r.as_ref().err())
        .collect();
    assert!(
        !rejected.is_empty(),
        "four clients through a 2-deep queue must overflow"
    );
    for e in &rejected {
        assert!(
            matches!(
                e,
                RtError::Rejected(Rejected::QueueFull { capacity: 2 })
            ),
            "expected QueueFull, got: {e}"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.rejected, rejected.len() as u64);
    assert_eq!(
        stats.completed + stats.rejected,
        4,
        "every request either completed or was rejected — no losses"
    );
}

#[test]
fn deadline_expiry_is_a_structured_error_at_both_stages() {
    let _env = rt_obs::testing::lock();
    rt_par::set_threads(2);
    let cfg = ServeConfig::builder()
        .max_batch(1)
        .max_wait_ms(1)
        .build()
        .unwrap();
    let service = Service::new(cfg);
    let key = service
        .admit(slow_spec(5, Duration::from_millis(80)))
        .unwrap();

    // Stage "queue": an already-expired budget fails before execution.
    let queue_expired = run_clients(&service, key, 1, |_| Some(Duration::ZERO));
    match &queue_expired[0] {
        Err(RtError::Deadline { stage, .. }) => assert_eq!(*stage, "queue"),
        other => panic!("expected queue-stage deadline, got {other:?}"),
    }

    // Stage "execute": the budget expires mid-forward; the watchdog trips
    // the batch token and the kernels unwind cooperatively.
    let exec_expired =
        run_clients(&service, key, 1, |_| Some(Duration::from_millis(20)));
    match &exec_expired[0] {
        Err(RtError::Deadline { stage, budget_ms }) => {
            assert_eq!(*stage, "execute");
            assert_eq!(*budget_ms, 20);
        }
        other => panic!("expected execute-stage deadline, got {other:?}"),
    }
    service.shutdown();
    assert_eq!(service.stats().deadline_expired, 2);
}

#[test]
fn deadline_trip_requeues_unexpired_batchmates_bit_identically() {
    let _env = rt_obs::testing::lock();
    rt_par::set_threads(4);
    let mut reference = Slow {
        inner: mlp(9),
        stall: Duration::ZERO,
    };
    let snapshot = StateDict::capture(&reference.inner);
    snapshot.restore(&mut reference).unwrap();
    let expected: Vec<Vec<u32>> = (0..3).map(|i| serial_bits(&mut reference, i)).collect();

    // All three clients land in one batch (flush threshold 3). Client 0's
    // 20 ms budget expires during the 60 ms stall: the trip fails client 0
    // and requeues clients 1 and 2, whose re-execution must still produce
    // the serial bytes.
    let cfg = ServeConfig::builder()
        .max_batch(3)
        .max_wait_ms(200)
        .build()
        .unwrap();
    let service = Service::new(cfg);
    let key = service
        .admit(slow_spec(9, Duration::from_millis(60)))
        .unwrap();
    let results = run_clients(&service, key, 3, |i| {
        (i == 0).then_some(Duration::from_millis(20))
    });
    service.shutdown();

    assert!(
        matches!(results[0], Err(RtError::Deadline { .. })),
        "budgeted client must expire, got {:?}",
        results[0]
    );
    for i in 1..3 {
        let y = results[i].as_ref().unwrap_or_else(|e| {
            panic!("requeued client {i} must complete: {e}")
        });
        assert_eq!(bits_of(y), expected[i], "requeued client {i}");
    }
}

#[test]
fn shutdown_drains_every_admitted_request_then_rejects() {
    let _env = rt_obs::testing::lock();
    rt_par::set_threads(4);
    // A flush threshold the three clients can never reach on their own:
    // only the drain can release them.
    let cfg = ServeConfig::builder()
        .max_batch(8)
        .max_wait_ms(10_000)
        .queue_cap(8)
        .build()
        .unwrap();
    let service = Service::new(cfg);
    let key = service.admit(spec_for(13)).unwrap();

    let results: Vec<Mutex<Option<Result<Tensor, RtError>>>> =
        (0..3).map(|_| Mutex::new(None)).collect();
    rt_par::run_tasks(4, &|i| {
        if i < 3 {
            let out = service.infer(key, sample(i));
            *results[i].lock().unwrap() = Some(out);
        } else {
            // The drain task: wait until all three clients are queued,
            // then shut down — every admitted request must complete.
            while service.stats().admitted < 3 {
                std::thread::sleep(Duration::from_millis(1));
            }
            service.shutdown();
        }
    });

    for (i, slot) in results.iter().enumerate() {
        let r = slot.lock().unwrap().take().expect("client finished");
        assert!(r.is_ok(), "request {i} must complete during drain: {r:?}");
    }
    let stats = service.stats();
    assert_eq!(stats.completed, 3);
    assert_eq!(stats.queued, 0);
    assert!(service.is_draining());

    // Post-drain admission and inference are structured rejections.
    match service.infer(key, sample(0)) {
        Err(RtError::Rejected(Rejected::Draining)) => {}
        other => panic!("expected Draining, got {other:?}"),
    }
    match service.admit(spec_for(14)) {
        Err(RtError::Rejected(Rejected::Draining)) => {}
        other => panic!("expected Draining on admit, got {other:?}"),
    }
}

#[test]
fn unknown_model_is_a_structured_rejection() {
    let _env = rt_obs::testing::lock();
    let service = Service::new(ServeConfig::builder().build().unwrap());
    match service.infer(0xdead_beef, sample(0)) {
        Err(RtError::Rejected(Rejected::UnknownModel { key })) => {
            assert_eq!(key, 0xdead_beef);
        }
        other => panic!("expected UnknownModel, got {other:?}"),
    }
}
