//! Checksum-keyed LRU model cache.
//!
//! A [`ModelSpec`] is the *recipe* for a servable model: a checkpoint
//! snapshot, an optional ticket mask, and a constructor for the bare
//! architecture. Loading a spec (restore + ticket application, which
//! compiles the mask's `rt-sparse` plans) happens **once on admission**;
//! the loaded model lives in [`ModelCache`] under a key derived from the
//! checkpoint checksum and the exact mask bits, and is evicted
//! least-recently-used when the cache's byte budget overflows. Byte
//! accounting is reported through `rt-obs`'s cost registry
//! (`record_cost`), so the serving cache shows up in the same roofline
//! table as the model's own FLOP/byte costs.

use crate::Result;
use rt_nn::checkpoint::StateDict;
use rt_nn::Layer;
use rt_prune::TicketMask;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// The recipe for one servable model: snapshot + optional ticket +
/// architecture constructor.
pub struct ModelSpec {
    snapshot: StateDict,
    ticket: Option<TicketMask>,
    build: Box<dyn Fn() -> rt_nn::Result<Box<dyn Layer>> + Send + Sync>,
}

impl ModelSpec {
    /// A spec for `snapshot` restored into the architecture `build`
    /// constructs (weights are overwritten by the snapshot, so the
    /// constructor's own initialization seed is irrelevant).
    pub fn new<F>(snapshot: StateDict, build: F) -> ModelSpec
    where
        F: Fn() -> rt_nn::Result<Box<dyn Layer>> + Send + Sync + 'static,
    {
        ModelSpec {
            snapshot,
            ticket: None,
            build: Box::new(build),
        }
    }

    /// Attaches a ticket mask, applied (and its sparse plans compiled)
    /// once at load time.
    #[must_use]
    pub fn with_ticket(mut self, ticket: TicketMask) -> ModelSpec {
        self.ticket = Some(ticket);
        self
    }

    /// The cache key: FNV-1a over the checkpoint checksum and the exact
    /// mask bits, so two admissions of the same weights + same ticket
    /// share one cached model while any bit of drift (different weights,
    /// different support) yields a distinct key.
    pub fn key(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |v: u64| {
            h = (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        };
        fold(self.snapshot.checksum());
        if let Some(ticket) = &self.ticket {
            for (slot, mask) in ticket.masks().iter().enumerate() {
                if let Some(packed) = mask {
                    fold(slot as u64);
                    for &bit in packed.to_tensor().data() {
                        fold(u64::from(bit.to_bits()));
                    }
                }
            }
        }
        h
    }

    /// Builds, restores, and masks the model (compiling sparse plans).
    fn load(&self) -> Result<Box<dyn Layer>> {
        let mut model = (self.build)()?;
        self.snapshot.restore(model.as_mut())?;
        if let Some(ticket) = &self.ticket {
            ticket.apply(model.as_mut())?;
        }
        Ok(model)
    }
}

impl std::fmt::Debug for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSpec")
            .field("checksum", &format_args!("{:#018x}", self.snapshot.checksum()))
            .field("ticket", &self.ticket.is_some())
            .finish_non_exhaustive()
    }
}

/// A loaded model plus its byte footprint. The model sits behind its own
/// mutex so a batch can execute while the cache itself stays unlocked.
pub struct LoadedModel {
    /// The restored, masked, plan-compiled model.
    pub model: Mutex<Box<dyn Layer>>,
    /// Resident bytes (parameters + buffers, f32).
    pub bytes: u64,
}

struct Entry {
    loaded: Arc<LoadedModel>,
    last_used: u64,
}

/// Byte-bounded LRU cache of loaded models.
///
/// Not internally synchronized — [`crate::Service`] owns one behind its
/// state lock. Handing out `Arc<LoadedModel>` means eviction never
/// invalidates a model that a batch is currently executing on; the
/// memory is reclaimed when the last in-flight batch drops its handle.
pub struct ModelCache {
    capacity: u64,
    tick: u64,
    resident: u64,
    entries: BTreeMap<u64, Entry>,
}

impl ModelCache {
    /// An empty cache bounded by `capacity` bytes.
    pub fn new(capacity: u64) -> ModelCache {
        ModelCache {
            capacity,
            tick: 0,
            resident: 0,
            entries: BTreeMap::new(),
        }
    }

    /// Number of resident models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total resident bytes.
    pub fn resident_bytes(&self) -> u64 {
        self.resident
    }

    /// Returns the cached model for `key`, loading it from `spec` on a
    /// miss. A load past the byte budget evicts least-recently-used
    /// entries (never the one just loaded).
    ///
    /// # Errors
    ///
    /// Propagates construction/restore/mask errors from the spec.
    pub fn get_or_load(&mut self, key: u64, spec: &ModelSpec) -> Result<Arc<LoadedModel>> {
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.tick;
            rt_obs::counter("serve.cache.hit").inc();
            return Ok(Arc::clone(&entry.loaded));
        }
        rt_obs::counter("serve.cache.miss").inc();
        let model = spec.load()?;
        let (bytes, params_total, params_live) = footprint(model.as_ref());
        rt_obs::cost::record_cost(
            "serve.cache.load",
            rt_obs::cost::CostDelta {
                bytes,
                params_total,
                params_live,
                ..Default::default()
            },
        );
        let loaded = Arc::new(LoadedModel {
            model: Mutex::new(model),
            bytes,
        });
        self.resident += bytes;
        self.entries.insert(
            key,
            Entry {
                loaded: Arc::clone(&loaded),
                last_used: self.tick,
            },
        );
        self.evict_past_budget(key);
        rt_obs::gauge("serve.cache.bytes").set(self.resident as f64);
        Ok(loaded)
    }

    /// Evicts LRU entries (excluding `keep`) until the budget holds or
    /// only `keep` remains.
    fn evict_past_budget(&mut self, keep: u64) {
        while self.resident > self.capacity && self.entries.len() > 1 {
            let victim = self
                .entries
                .iter()
                .filter(|(k, _)| **k != keep)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    if let Some(evicted) = self.entries.remove(&k) {
                        self.resident -= evicted.loaded.bytes;
                        rt_obs::counter("serve.cache.evict").inc();
                        rt_obs::event(
                            "serve.cache.evict",
                            &[
                                ("key", format!("{k:#018x}").into()),
                                ("bytes", (evicted.loaded.bytes as i64).into()),
                            ],
                        );
                    }
                }
                None => break,
            }
        }
    }
}

/// Resident footprint of a model: `(bytes, params_total, params_live)`.
/// Bytes cover parameter and buffer scalars at f32 width; live counts
/// come from the compiled plans where a mask is installed.
fn footprint(model: &dyn Layer) -> (u64, u64, u64) {
    let mut total = 0u64;
    let mut live = 0u64;
    let mut scalars = 0u64;
    for p in model.params() {
        let n = p.data.data().len() as u64;
        total += n;
        scalars += n;
        live += match &p.plan {
            Some(plan) => plan.live_weights(),
            None => n,
        };
    }
    for b in model.buffers() {
        scalars += b.data().len() as u64;
    }
    (scalars * 4, total, live)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rt_nn::layers::Linear;
    use rt_tensor::rng::rng_from_seed;
    use rt_tensor::Tensor;

    fn linear_spec(seed: u64) -> ModelSpec {
        let model = Linear::new(4, 3, &mut rng_from_seed(seed)).unwrap();
        let snapshot = StateDict::capture(&model);
        ModelSpec::new(snapshot, || {
            Ok(Box::new(Linear::new(4, 3, &mut rng_from_seed(0))?))
        })
    }

    #[test]
    fn keys_depend_on_weights_and_ticket() {
        let a = linear_spec(1);
        let b = linear_spec(2);
        assert_ne!(a.key(), b.key());

        let model = Linear::new(4, 3, &mut rng_from_seed(1)).unwrap();
        let mut masks = TicketMask::dense(&model);
        let same_weights = linear_spec(1);
        assert_eq!(a.key(), same_weights.key());
        masks.set_slot(
            0,
            Some(Tensor::from_fn(&[3, 4], |i| if i % 2 == 0 { 1.0 } else { 0.0 })),
        );
        let ticketed = linear_spec(1).with_ticket(masks);
        assert_ne!(a.key(), ticketed.key());
    }

    #[test]
    fn loads_once_and_hits_thereafter() {
        let spec = linear_spec(3);
        let key = spec.key();
        let mut cache = ModelCache::new(u64::MAX);
        let first = cache.get_or_load(key, &spec).unwrap();
        let second = cache.get_or_load(key, &spec).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.len(), 1);
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn evicts_lru_by_bytes_but_keeps_inflight_arcs_alive() {
        let specs: Vec<ModelSpec> = (0..3).map(linear_spec).collect();
        let one_model_bytes = {
            let mut probe = ModelCache::new(u64::MAX);
            probe
                .get_or_load(specs[0].key(), &specs[0])
                .unwrap()
                .bytes
        };
        // Budget for two models: the third load must evict the LRU one.
        let mut cache = ModelCache::new(2 * one_model_bytes);
        let a = cache.get_or_load(specs[0].key(), &specs[0]).unwrap();
        let _b = cache.get_or_load(specs[1].key(), &specs[1]).unwrap();
        // Touch A so B is the LRU victim.
        let _ = cache.get_or_load(specs[0].key(), &specs[0]).unwrap();
        let _c = cache.get_or_load(specs[2].key(), &specs[2]).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.resident_bytes() <= 2 * one_model_bytes);
        // The evicted Arc (if any outstanding) still works: models in
        // flight are never invalidated by eviction.
        let guard = a.model.lock().unwrap();
        assert_eq!(guard.params().len(), 2);
    }

    #[test]
    fn ticket_application_compiles_plans_at_load() {
        let model = Linear::new(4, 3, &mut rng_from_seed(5)).unwrap();
        let snapshot = StateDict::capture(&model);
        let mut ticket = TicketMask::dense(&model);
        ticket.set_slot(
            0,
            Some(Tensor::from_fn(&[3, 4], |i| if i < 4 { 1.0 } else { 0.0 })),
        );
        let spec = ModelSpec::new(snapshot, || {
            Ok(Box::new(Linear::new(4, 3, &mut rng_from_seed(0))?))
        })
        .with_ticket(ticket);
        let mut cache = ModelCache::new(u64::MAX);
        let loaded = cache.get_or_load(spec.key(), &spec).unwrap();
        let guard = loaded.model.lock().unwrap();
        assert!(
            guard.params()[0].plan.is_some(),
            "admission must compile the ticket's sparse plan"
        );
    }
}
