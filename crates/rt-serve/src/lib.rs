//! Batched ticket-inference serving: the deployment layer that cashes the
//! efficiency check the pruning stack writes.
//!
//! [`Service`] accepts single-sample requests, coalesces them into
//! dynamic micro-batches (flushed at [`ServeConfig::max_batch`] or after
//! [`ServeConfig::max_wait`]), and executes each batch through one
//! forward pass of a sparse-compiled model on the `rt-par` pool. The
//! design commitments, in order of importance:
//!
//! 1. **Bit-identity.** A batched forward returns, for every request,
//!    exactly the bytes a serial single-sample forward would have —
//!    because every kernel in the workspace accumulates each output
//!    element independently in a fixed reduction order, the batch
//!    dimension only tiles work, never reassociates floats. Batching is
//!    therefore purely a throughput decision; results are independent of
//!    batch composition, arrival order, and `RT_THREADS`.
//! 2. **Explicit backpressure.** The admission queue is bounded; a full
//!    queue rejects with [`rt_nn::Rejected::QueueFull`] instead of
//!    buffering unboundedly, and a draining service rejects with
//!    [`rt_nn::Rejected::Draining`]. All errors surface as the unified
//!    [`rt_nn::RtError`].
//! 3. **Deadlines are wired to `rt-par` cancellation.** A request may
//!    carry a wall-clock budget; the batch executor arms the `rt-par`
//!    watchdog for the tightest budget in the batch, the kernels observe
//!    the tripped token at chunk boundaries, expired requests fail with
//!    [`rt_nn::RtError::Deadline`], and unexpired batch-mates are
//!    requeued and re-executed (bit-identically, see 1).
//! 4. **No threads of its own.** There is no background batcher thread:
//!    the service uses a leader/follower protocol in which one waiting
//!    client thread becomes the flusher. This keeps the crate inside the
//!    workspace thread discipline (all parallelism flows through
//!    `rt-par`) and means an idle service costs nothing.
//!
//! Models enter the service through [`Service::admit`]: a checkpoint
//! snapshot ([`rt_nn::checkpoint::StateDict`]) plus an optional
//! [`rt_prune::TicketMask`]. Admission restores the weights, applies the
//! ticket (compiling its `rt-sparse` plans exactly once), and installs
//! the model in an LRU cache keyed by checkpoint checksum and evicted by
//! bytes — see [`cache`].
//!
//! ```no_run
//! use rt_serve::{ModelSpec, ServeConfig, Service};
//! # fn demo(snapshot: rt_nn::checkpoint::StateDict,
//! #         ticket: rt_prune::TicketMask,
//! #         sample: rt_tensor::Tensor) -> Result<(), rt_nn::RtError> {
//! let service = Service::new(ServeConfig::builder().max_batch(8).build()?);
//! let key = service.admit(
//!     ModelSpec::new(snapshot, || {
//!         // Build the architecture the snapshot restores into.
//! #       unimplemented!()
//!     })
//!     .with_ticket(ticket),
//! )?;
//! let logits = service.infer(key, sample)?;
//! service.shutdown(); // drains every admitted request first
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod config;
mod service;

pub use cache::{ModelCache, ModelSpec};
pub use config::{ServeConfig, ServeConfigBuilder};
pub use service::{Service, ServiceStats};

/// Crate-level result alias: every fallible path returns the unified
/// [`rt_nn::RtError`].
pub type Result<T> = std::result::Result<T, rt_nn::RtError>;
