//! The batching inference service: admission, coalescing, execution,
//! deadlines, and drain.
//!
//! # Batching policy
//!
//! Requests queue FIFO in one bounded admission queue. A batch is the
//! oldest request's *cohort*: up to [`ServeConfig::max_batch`] queued
//! requests for the same model key and sample shape, in arrival order.
//! A flush happens when the queue holds `max_batch` requests, when the
//! oldest request has waited [`ServeConfig::max_wait`], or when the
//! service is draining.
//!
//! # Leader/follower execution
//!
//! There is no batcher thread. Every thread blocked in
//! [`Service::infer`] participates in a leader/follower protocol: when a
//! flush is due and no leader is active, one waiter promotes itself,
//! drains the cohort, executes it (with the service state *unlocked*, so
//! admission continues during compute), delivers each result to its
//! request's slot, and steps down. The forward itself fans out on the
//! `rt-par` pool exactly as training does.
//!
//! # Why batched bytes equal serial bytes
//!
//! Every kernel in the workspace computes each output element as an
//! independent fixed-order reduction; the leading (batch) dimension only
//! adds more independent rows (see `rt-tensor::linalg`'s determinism
//! notes). Stacking K samples and splitting the result rows therefore
//! yields, for every request, exactly the bytes of a one-sample forward
//! — the property the `serve_bit_identity` proptests and the
//! `bench_serve` CI gate both enforce.

use crate::cache::{LoadedModel, ModelSpec};
use crate::config::ServeConfig;
use crate::{cache::ModelCache, Result};
use rt_nn::{ExecCtx, Rejected, RtError};
use rt_obs::Stopwatch;
use rt_par::{with_cancel, CancelScope, Cancelled};
use rt_tensor::Tensor;
use std::collections::{BTreeMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// One queued request: the sample, its response slot, and its budget.
struct Pending {
    model_key: u64,
    sample: Tensor,
    enqueued: Stopwatch,
    budget: Option<Duration>,
    slot: Arc<Slot>,
}

impl Pending {
    /// Whether this request's wall-clock budget has expired.
    fn expired(&self) -> bool {
        self.budget.is_some_and(|b| self.enqueued.elapsed() >= b)
    }

    fn budget_ms(&self) -> u64 {
        self.budget.map_or(0, |b| b.as_millis() as u64)
    }
}

/// Single-assignment response mailbox; the submitting thread takes the
/// value, everyone else only writes it.
struct Slot(Mutex<Option<Result<Tensor>>>);

impl Slot {
    fn deliver(&self, result: Result<Tensor>) {
        *self.0.lock().expect("response slot poisoned") = Some(result);
    }

    fn take(&self) -> Option<Result<Tensor>> {
        self.0.lock().expect("response slot poisoned").take()
    }
}

/// Carrier for a batch-executor panic that was not a cooperative
/// cancellation: the panic message, re-raised as a structured error so
/// no panic ever crosses the service boundary.
#[derive(Debug)]
struct ServeFailure(String);

impl std::fmt::Display for ServeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "batch execution failed: {}", self.0)
    }
}

impl std::error::Error for ServeFailure {}

/// Mutable service state, all behind one mutex.
struct State {
    specs: BTreeMap<u64, ModelSpec>,
    cache: ModelCache,
    queue: VecDeque<Pending>,
    leader_active: bool,
    draining: bool,
    admitted: u64,
    rejected: u64,
    completed: u64,
    deadline_expired: u64,
}

/// A point-in-time snapshot of the service's counters (test and
/// introspection surface; the live telemetry goes through `rt-obs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub admitted: u64,
    /// Requests refused at admission (queue full / draining / unknown).
    pub rejected: u64,
    /// Requests completed with a model output.
    pub completed: u64,
    /// Requests failed by deadline expiry (queued or executing).
    pub deadline_expired: u64,
    /// Requests currently queued.
    pub queued: usize,
    /// Models resident in the cache.
    pub cached_models: usize,
    /// Bytes resident in the cache.
    pub cached_bytes: u64,
}

/// What one batch execution asks the flusher to do next.
struct ExecOutcome {
    /// Unexpired requests whose batch was cancelled — put back at the
    /// front of the queue, in order, for re-execution.
    requeue: Vec<Pending>,
    completed: u64,
    expired: u64,
}

/// The batched-inference service. See the module docs for the design;
/// all methods take `&self` and are safe to call from any number of
/// threads (the expected callers are `rt-par` pool tasks).
pub struct Service {
    cfg: ServeConfig,
    state: Mutex<State>,
    wake: Condvar,
}

impl Service {
    /// A service with no admitted models and an empty queue.
    pub fn new(cfg: ServeConfig) -> Service {
        let cache = ModelCache::new(cfg.cache_bytes);
        Service {
            cfg,
            state: Mutex::new(State {
                specs: BTreeMap::new(),
                cache,
                queue: VecDeque::new(),
                leader_active: false,
                draining: false,
                admitted: 0,
                rejected: 0,
                completed: 0,
                deadline_expired: 0,
            }),
            wake: Condvar::new(),
        }
    }

    /// The configuration this service was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Admits a model: registers the spec and loads it immediately, so
    /// snapshot restore and ticket-plan compilation happen exactly once,
    /// here, and never on the request path (a later cache miss after
    /// eviction reloads from the retained spec). Returns the cache key
    /// requests pass to [`Service::infer`].
    ///
    /// # Errors
    ///
    /// [`Rejected::Draining`] after [`Service::shutdown`];
    /// construction/restore/mask errors from the spec.
    pub fn admit(&self, spec: ModelSpec) -> Result<u64> {
        let _span = rt_obs::span!("serve.admit");
        let key = spec.key();
        let mut st = self.lock();
        if st.draining {
            return Err(Rejected::Draining.into());
        }
        st.specs.insert(key, spec);
        let State { specs, cache, .. } = &mut *st;
        let spec = specs.get(&key).expect("spec was just inserted");
        cache.get_or_load(key, spec)?;
        rt_obs::counter("serve.model_admitted").inc();
        Ok(key)
    }

    /// Runs one sample through an admitted model, without a deadline.
    /// Blocks until the result is ready; the calling thread may serve as
    /// the batch flusher while it waits.
    ///
    /// # Errors
    ///
    /// [`Rejected`] variants at admission; model errors from execution.
    pub fn infer(&self, model: u64, sample: Tensor) -> Result<Tensor> {
        self.infer_with_deadline(model, sample, None)
    }

    /// [`Service::infer`] with a wall-clock budget measured from
    /// admission. Expiry — in the queue or mid-execution, where it is
    /// enforced through the `rt-par` watchdog tripping the batch's
    /// cancellation token — fails the request with
    /// [`RtError::Deadline`]; batch-mates with remaining budget are
    /// requeued and re-executed bit-identically.
    ///
    /// # Errors
    ///
    /// [`Rejected`] variants at admission, [`RtError::Deadline`] on
    /// expiry, model errors from execution.
    pub fn infer_with_deadline(
        &self,
        model: u64,
        sample: Tensor,
        budget: Option<Duration>,
    ) -> Result<Tensor> {
        let slot = Arc::new(Slot(Mutex::new(None)));
        {
            let mut st = self.lock();
            if st.draining {
                st.rejected += 1;
                rt_obs::counter("serve.reject").inc();
                rt_obs::counter("serve.reject.draining").inc();
                return Err(Rejected::Draining.into());
            }
            if !st.specs.contains_key(&model) {
                st.rejected += 1;
                rt_obs::counter("serve.reject").inc();
                rt_obs::counter("serve.reject.unknown_model").inc();
                return Err(Rejected::UnknownModel { key: model }.into());
            }
            if st.queue.len() >= self.cfg.queue_cap {
                st.rejected += 1;
                rt_obs::counter("serve.reject").inc();
                rt_obs::counter("serve.reject.queue_full").inc();
                return Err(Rejected::QueueFull {
                    capacity: self.cfg.queue_cap,
                }
                .into());
            }
            st.admitted += 1;
            st.queue.push_back(Pending {
                model_key: model,
                sample,
                enqueued: Stopwatch::start(),
                budget,
                slot: Arc::clone(&slot),
            });
        }
        self.wake.notify_all();
        self.pump(&slot)
    }

    /// Drains and stops the service: admission is closed immediately
    /// (new requests get [`Rejected::Draining`]), then every request
    /// already in the queue — including any requeued by a deadline trip
    /// — is executed to completion before this returns. The caller acts
    /// as the flusher, so drain completes even with no client threads
    /// still waiting.
    pub fn shutdown(&self) {
        let _span = rt_obs::span!("serve.drain");
        let mut st = self.lock();
        st.draining = true;
        self.wake.notify_all();
        loop {
            if st.queue.is_empty() && !st.leader_active {
                rt_obs::counter("serve.drained").inc();
                return;
            }
            if !st.leader_active && !st.queue.is_empty() {
                st = self.lead_one_flush(st);
                continue;
            }
            // A leader elsewhere is mid-flush; yield until it finishes.
            let (guard, _) = self
                .wake
                .wait_timeout(st, Duration::from_millis(5))
                .expect("service state poisoned");
            st = guard;
        }
    }

    /// Whether [`Service::shutdown`] has begun.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> ServiceStats {
        let st = self.lock();
        ServiceStats {
            admitted: st.admitted,
            rejected: st.rejected,
            completed: st.completed,
            deadline_expired: st.deadline_expired,
            queued: st.queue.len(),
            cached_models: st.cache.len(),
            cached_bytes: st.cache.resident_bytes(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().expect("service state poisoned")
    }

    /// Waits for `slot` to fill, flushing batches whenever this thread
    /// finds a due flush and no active leader.
    fn pump(&self, slot: &Arc<Slot>) -> Result<Tensor> {
        let mut st = self.lock();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            if !st.leader_active && self.flush_due(&st) {
                st = self.lead_one_flush(st);
                continue;
            }
            let (guard, _) = self
                .wake
                .wait_timeout(st, self.wait_budget(&st))
                .expect("service state poisoned");
            st = guard;
        }
    }

    /// Whether the oldest queued request should flush now.
    fn flush_due(&self, st: &State) -> bool {
        match st.queue.front() {
            None => false,
            Some(front) => {
                st.draining
                    || st.queue.len() >= self.cfg.max_batch
                    || front.enqueued.elapsed() >= self.cfg.max_wait
                    || front.expired()
            }
        }
    }

    /// How long a waiter may sleep before re-checking flush conditions.
    fn wait_budget(&self, st: &State) -> Duration {
        match st.queue.front() {
            None => Duration::from_millis(20),
            Some(front) => self
                .cfg
                .max_wait
                .saturating_sub(front.enqueued.elapsed())
                .max(Duration::from_micros(200)),
        }
    }

    /// Promotes the caller to leader for exactly one flush, then steps
    /// down and wakes everyone.
    fn lead_one_flush<'a>(&'a self, mut st: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        st.leader_active = true;
        let mut st = self.flush_one_batch(st);
        st.leader_active = false;
        drop(st);
        self.wake.notify_all();
        self.lock()
    }

    /// Drains the oldest cohort and executes it with the state unlocked.
    fn flush_one_batch<'a>(&'a self, mut st: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
        let (key, shape) = match st.queue.front() {
            Some(p) => (p.model_key, p.sample.shape().to_vec()),
            None => return st,
        };
        // Cohort selection: FIFO scan for same model + same sample shape.
        let mut batch: Vec<Pending> = Vec::new();
        let mut rest: VecDeque<Pending> = VecDeque::with_capacity(st.queue.len());
        while let Some(p) = st.queue.pop_front() {
            if batch.len() < self.cfg.max_batch
                && p.model_key == key
                && p.sample.shape() == shape.as_slice()
            {
                batch.push(p);
            } else {
                rest.push_back(p);
            }
        }
        st.queue = rest;

        // Fail queue-expired requests without executing them.
        let mut run: Vec<Pending> = Vec::new();
        for p in batch {
            if p.expired() {
                st.deadline_expired += 1;
                rt_obs::counter("serve.deadline.queue").inc();
                p.slot.deliver(Err(RtError::Deadline {
                    budget_ms: p.budget_ms(),
                    stage: "queue",
                }));
            } else {
                run.push(p);
            }
        }
        if run.is_empty() {
            return st;
        }

        let loaded = {
            let State { specs, cache, .. } = &mut *st;
            match specs.get(&key) {
                Some(spec) => cache.get_or_load(key, spec),
                None => Err(Rejected::UnknownModel { key }.into()),
            }
        };
        let loaded = match loaded {
            Ok(l) => l,
            Err(e) => {
                for p in &run {
                    p.slot.deliver(Err(clone_error(&e)));
                }
                return st;
            }
        };

        drop(st); // admission and other models proceed during compute
        let outcome = self.execute(&loaded, run);
        let mut st = self.lock();
        st.completed += outcome.completed;
        st.deadline_expired += outcome.expired;
        for p in outcome.requeue.into_iter().rev() {
            st.queue.push_front(p);
        }
        st
    }

    /// Executes one cohort as a single stacked forward and distributes
    /// per-request rows. Returns requests to requeue after a deadline
    /// trip cancelled the batch under them.
    fn execute(&self, loaded: &LoadedModel, batch: Vec<Pending>) -> ExecOutcome {
        let _span = rt_obs::span!("serve.batch", "size" => batch.len());
        rt_obs::histogram("serve.batch_size").observe(batch.len() as f64);
        let queue_ms = rt_obs::histogram("serve.queue_ms");
        for p in &batch {
            queue_ms.observe(p.enqueued.elapsed_ms());
        }
        let mut outcome = ExecOutcome {
            requeue: Vec::new(),
            completed: 0,
            expired: 0,
        };

        // Per-request deadlines → one rt-par cancellation scope per
        // batch, its watchdog armed for the tightest remaining budget.
        // Kernels observe the tripped token at chunk boundaries.
        let tightest = batch
            .iter()
            .filter_map(|p| p.budget.map(|b| b.saturating_sub(p.enqueued.elapsed())))
            .min();
        let scope = CancelScope::new();
        let _deadline = tightest.map(|d| rt_par::watchdog::arm(scope.token(), d));
        let _ambient = with_cancel(scope.token());

        // Stack the cohort: [K, sample_shape...].
        let sample_len = batch[0].sample.data().len();
        let mut shape = Vec::with_capacity(batch[0].sample.shape().len() + 1);
        shape.push(batch.len());
        shape.extend_from_slice(batch[0].sample.shape());
        let mut data = Vec::with_capacity(batch.len() * sample_len);
        for p in &batch {
            data.extend_from_slice(p.sample.data());
        }
        let x = match Tensor::from_vec(shape, data) {
            Ok(t) => t,
            Err(e) => {
                for p in &batch {
                    p.slot.deliver(Err(RtError::Tensor(e.clone())));
                }
                return outcome;
            }
        };

        // Build the context *after* installing the ambient token so the
        // batch's cancellation threads through `ExecCtx`.
        let mut ctx = ExecCtx::eval();
        if let Some(sparse) = self.cfg.sparse {
            ctx = ctx.with_sparse(sparse);
        }

        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            // Recover the model mutex from a previous cancelled attempt's
            // poisoning: forwards fully overwrite their caches, so the
            // model is valid regardless of where an unwind stopped it.
            let mut model = loaded
                .model
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            model.forward(&x, ctx)
        }));
        match result {
            Ok(Ok(y)) => {
                let row_shape: Vec<usize> = y.shape()[1..].to_vec();
                let row_len: usize = row_shape.iter().product();
                for (i, p) in batch.iter().enumerate() {
                    let row = y.data()[i * row_len..(i + 1) * row_len].to_vec();
                    p.slot
                        .deliver(Tensor::from_vec(row_shape.clone(), row).map_err(Into::into));
                    outcome.completed += 1;
                }
            }
            Ok(Err(e)) => {
                for p in &batch {
                    p.slot.deliver(Err(RtError::Nn(e.clone())));
                }
            }
            Err(payload) if payload.downcast_ref::<Cancelled>().is_some() => {
                // The watchdog tripped the batch: expired members fail,
                // the rest go back to the front of the queue. Their
                // re-execution is bit-identical (batch composition never
                // changes result bytes), so a trip costs latency only.
                rt_obs::counter("serve.deadline.tripped").inc();
                for p in batch {
                    if p.expired() {
                        outcome.expired += 1;
                        p.slot.deliver(Err(RtError::Deadline {
                            budget_ms: p.budget_ms(),
                            stage: "execute",
                        }));
                    } else {
                        outcome.requeue.push(p);
                    }
                }
            }
            Err(payload) => {
                let detail = panic_message(payload);
                rt_obs::counter("serve.batch_panic").inc();
                for p in &batch {
                    p.slot.deliver(Err(RtError::Layer {
                        layer: "serve",
                        source: Box::new(ServeFailure(detail.clone())),
                    }));
                }
            }
        }
        outcome
    }
}

/// Best-effort structural clone for broadcasting one failure to every
/// request of a batch (the unified error is deliberately not `Clone` —
/// it can carry `io::Error` and boxed sources).
fn clone_error(e: &RtError) -> RtError {
    match e {
        RtError::Tensor(t) => RtError::Tensor(t.clone()),
        RtError::Nn(n) => RtError::Nn(n.clone()),
        RtError::Rejected(r) => RtError::Rejected(*r),
        RtError::Deadline { budget_ms, stage } => RtError::Deadline {
            budget_ms: *budget_ms,
            stage,
        },
        other => RtError::Layer {
            layer: "serve",
            source: Box::new(ServeFailure(other.to_string())),
        },
    }
}

/// Renders a non-`Cancelled` panic payload for the structured error.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
