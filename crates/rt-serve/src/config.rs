//! Service configuration: builder-constructed, env-overridable,
//! validated before a [`crate::Service`] can exist.

use crate::Result;
use rt_nn::NnError;
use std::time::Duration;

/// Tuning knobs of a [`crate::Service`].
///
/// Construct through [`ServeConfig::builder`]; validation happens in
/// [`ServeConfigBuilder::build`] so an invalid combination can never
/// reach the batcher. Drivers map the build error to the workspace
/// `ExitCode::Usage` (2) convention.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Flush threshold: a batch executes as soon as this many compatible
    /// requests are queued (≥ 1; 1 disables coalescing).
    pub max_batch: usize,
    /// Flush deadline: the oldest queued request never waits longer than
    /// this for batch-mates before executing.
    pub max_wait: Duration,
    /// Admission-queue bound; a full queue rejects with
    /// [`rt_nn::Rejected::QueueFull`] (≥ 1).
    pub queue_cap: usize,
    /// Model-cache capacity in bytes; admission past this evicts
    /// least-recently-used models (see [`crate::ModelCache`]).
    pub cache_bytes: u64,
    /// Force sparse execution on (`Some(true)`) or off (`Some(false)`)
    /// for every forward; `None` follows the process default
    /// ([`rt_nn::sparse_exec_default`], i.e. `RT_SPARSE`). The flag only
    /// trades speed — sparse and dense execution are bit-identical.
    pub sparse: Option<bool>,
}

impl ServeConfig {
    /// Starts a builder from the defaults: batch 8, wait 2 ms, queue 64,
    /// unbounded cache, process-default sparse execution.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            max_batch: 8,
            max_wait_ms: 2,
            queue_cap: 64,
            cache_bytes: u64::MAX,
            sparse: None,
        }
    }
}

/// Builder for [`ServeConfig`]. All setters are infallible; every
/// validation error is reported by [`ServeConfigBuilder::build`] so a
/// driver has exactly one place to map onto `ExitCode::Usage`.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    max_batch: usize,
    max_wait_ms: u64,
    queue_cap: usize,
    cache_bytes: u64,
    sparse: Option<bool>,
}

impl ServeConfigBuilder {
    /// Sets the flush threshold (validated ≥ 1 at build).
    #[must_use]
    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// Sets the flush deadline in milliseconds.
    #[must_use]
    pub fn max_wait_ms(mut self, ms: u64) -> Self {
        self.max_wait_ms = ms;
        self
    }

    /// Sets the admission-queue bound (validated ≥ 1 at build).
    #[must_use]
    pub fn queue_cap(mut self, n: usize) -> Self {
        self.queue_cap = n;
        self
    }

    /// Sets the model-cache byte capacity.
    #[must_use]
    pub fn cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    /// Forces sparse execution on or off for every forward.
    #[must_use]
    pub fn sparse(mut self, sparse: Option<bool>) -> Self {
        self.sparse = sparse;
        self
    }

    /// Applies the serving environment overrides: `RT_SERVE_BATCH`
    /// (flush threshold), `RT_SERVE_QUEUE` (admission bound), and
    /// `RT_SERVE_WAIT_MS` (flush deadline). Unlike the runner's
    /// fail-safe envs, these are *strict*: a present-but-malformed value
    /// is a usage error — a typo silently reverting to defaults would
    /// invalidate a load test without anyone noticing.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] (as [`rt_nn::RtError`]) naming
    /// the offending variable and value.
    pub fn env_overrides(mut self) -> Result<Self> {
        if let Some(v) = parse_env("RT_SERVE_BATCH")? {
            self.max_batch = v as usize;
        }
        if let Some(v) = parse_env("RT_SERVE_QUEUE")? {
            self.queue_cap = v as usize;
        }
        if let Some(v) = parse_env("RT_SERVE_WAIT_MS")? {
            self.max_wait_ms = v;
        }
        Ok(self)
    }

    /// Validates and finalizes the config.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] (as [`rt_nn::RtError`]) when
    /// `max_batch` or `queue_cap` is zero, or when `max_batch` exceeds
    /// `queue_cap` (a batch could then never fill).
    pub fn build(self) -> Result<ServeConfig> {
        if self.max_batch == 0 {
            return Err(invalid("max_batch must be at least 1"));
        }
        if self.queue_cap == 0 {
            return Err(invalid("queue_cap must be at least 1"));
        }
        if self.max_batch > self.queue_cap {
            return Err(invalid(&format!(
                "max_batch ({}) exceeds queue_cap ({}); a full batch could never assemble",
                self.max_batch, self.queue_cap
            )));
        }
        Ok(ServeConfig {
            max_batch: self.max_batch,
            max_wait: Duration::from_millis(self.max_wait_ms),
            queue_cap: self.queue_cap,
            cache_bytes: self.cache_bytes,
            sparse: self.sparse,
        })
    }
}

fn invalid(detail: &str) -> rt_nn::RtError {
    NnError::InvalidConfig {
        detail: detail.to_string(),
    }
    .into()
}

/// Reads one strict numeric env override: absent → `None`, present and a
/// non-negative integer → `Some(v)`, anything else → usage error.
fn parse_env(name: &str) -> Result<Option<u64>> {
    match std::env::var(name) {
        Err(_) => Ok(None),
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(v) => Ok(Some(v)),
            Err(_) => Err(invalid(&format!(
                "{name}={raw:?} is not a non-negative integer"
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let cfg = ServeConfig::builder().build().unwrap();
        assert_eq!(cfg.max_batch, 8);
        assert_eq!(cfg.queue_cap, 64);
        assert_eq!(cfg.max_wait, Duration::from_millis(2));
    }

    #[test]
    fn zero_batch_and_zero_queue_are_usage_errors() {
        assert!(ServeConfig::builder().max_batch(0).build().is_err());
        assert!(ServeConfig::builder().queue_cap(0).build().is_err());
        let e = ServeConfig::builder()
            .max_batch(16)
            .queue_cap(4)
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("exceeds queue_cap"), "{e}");
    }

    #[test]
    fn env_overrides_are_strict() {
        // Serialize env mutation against other tests in this binary.
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("RT_SERVE_BATCH", "3");
        std::env::set_var("RT_SERVE_QUEUE", "12");
        std::env::set_var("RT_SERVE_WAIT_MS", "7");
        let cfg = ServeConfig::builder()
            .env_overrides()
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(cfg.max_batch, 3);
        assert_eq!(cfg.queue_cap, 12);
        assert_eq!(cfg.max_wait, Duration::from_millis(7));

        std::env::set_var("RT_SERVE_BATCH", "lots");
        let err = ServeConfig::builder().env_overrides().unwrap_err();
        assert!(err.to_string().contains("RT_SERVE_BATCH"), "{err}");
        std::env::remove_var("RT_SERVE_BATCH");
        std::env::remove_var("RT_SERVE_QUEUE");
        std::env::remove_var("RT_SERVE_WAIT_MS");
    }

    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
}
